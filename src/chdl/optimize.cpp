#include "chdl/optimize.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/status.hpp"

namespace atlantis::chdl {
namespace {

/// Combinational kinds: everything the simulator compiles onto the op
/// tape (mirrors Simulator::levelize's classification).
bool is_comb(CompKind k) {
  switch (k) {
    case CompKind::kReg:
    case CompKind::kRamRead:
    case CompKind::kRamWrite:
    case CompKind::kInput:
    case CompKind::kConst:
    case CompKind::kOutput:
      return false;
    default:
      return true;
  }
}

bool commutative(CompKind k) {
  switch (k) {
    case CompKind::kAnd:
    case CompKind::kOr:
    case CompKind::kXor:
    case CompKind::kAdd:
    case CompKind::kEq:
      return true;
    default:
      return false;
  }
}

/// Working state for one optimizer run. Wire ids are resolved through
/// `forward` (union-find with path compression); constants known so far
/// live in `cval`, keyed by representative id.
struct Pipeline {
  const Design& d;
  const OptimizeOptions& opts;
  OptimizedNetlist out;
  std::vector<BitVec> cval;            // per representative wire
  std::vector<std::int32_t> producer;  // rep wire id -> alive comb comp

  explicit Pipeline(const Design& design, const OptimizeOptions& o)
      : d(design), opts(o) {
    const auto n_wires = static_cast<std::size_t>(d.wire_count());
    out.comp_alive.assign(d.components().size(), 0);
    out.forward.resize(n_wires);
    for (std::size_t i = 0; i < n_wires; ++i) {
      out.forward[i] = static_cast<std::int32_t>(i);
    }
    out.fold_value.assign(n_wires, BitVec{});
    cval.assign(n_wires, BitVec{});
    producer.assign(n_wires, -1);
    for (std::size_t i = 0; i < d.components().size(); ++i) {
      const Component& c = d.components()[i];
      if (is_comb(c.kind)) {
        out.comp_alive[i] = 1;
        producer[static_cast<std::size_t>(c.out.id)] =
            static_cast<std::int32_t>(i);
      } else if (c.kind == CompKind::kConst) {
        cval[static_cast<std::size_t>(c.out.id)] = c.init;
      }
    }
  }

  std::int32_t find(std::int32_t id) {
    std::int32_t root = id;
    while (out.forward[static_cast<std::size_t>(root)] != root) {
      root = out.forward[static_cast<std::size_t>(root)];
    }
    while (out.forward[static_cast<std::size_t>(id)] != id) {
      const std::int32_t next = out.forward[static_cast<std::size_t>(id)];
      out.forward[static_cast<std::size_t>(id)] = root;
      id = next;
    }
    return root;
  }

  Wire resolve(Wire w) {
    if (!w.valid()) return w;
    return Wire{find(w.id), w.width};
  }

  const BitVec& const_of(std::int32_t rep_id) {
    return cval[static_cast<std::size_t>(rep_id)];
  }

  std::int64_t live_ops() const {
    std::int64_t n = 0;
    for (std::size_t i = 0; i < out.comp_alive.size(); ++i) {
      if (out.comp_alive[i] && is_comb(d.components()[i].kind)) ++n;
    }
    return n;
  }

  /// Replaces comp `i`'s output with the constant `v`.
  void fold_to(std::int32_t i, Wire w, BitVec v) {
    out.comp_alive[static_cast<std::size_t>(i)] = 0;
    producer[static_cast<std::size_t>(w.id)] = -1;
    cval[static_cast<std::size_t>(w.id)] = v;
    out.fold_value[static_cast<std::size_t>(w.id)] = std::move(v);
    ++out.report.wires_folded;
  }

  /// Replaces comp `i`'s output with the equal-width wire `target`
  /// (already resolved); the simulator aliases their storage slots.
  void alias_to(std::int32_t i, Wire w, Wire target) {
    ATLANTIS_CHECK(w.width == target.width, "optimizer alias width mismatch");
    out.comp_alive[static_cast<std::size_t>(i)] = 0;
    producer[static_cast<std::size_t>(w.id)] = -1;
    out.forward[static_cast<std::size_t>(w.id)] = target.id;
    ++out.report.wires_aliased;
  }

  // --- pass 1: constant propagation / folding --------------------------
  void fold_pass(OptimizePassStats& stats);
  // --- pass 2: dead-logic elimination ----------------------------------
  std::int64_t dce_sweep();
  // --- pass 3: common-subexpression elimination ------------------------
  void cse_pass(OptimizePassStats& stats);
  // --- pass 4: peephole fusion -----------------------------------------
  void fuse_pass(OptimizePassStats& stats);

  BitVec eval_const(const Component& c, const std::vector<const BitVec*>& in);
};

/// Evaluates one component over constant inputs with BitVec arithmetic.
/// Must match Simulator::eval_comp bit for bit (the differential fuzz
/// suite enforces this).
BitVec Pipeline::eval_const(const Component& c,
                            const std::vector<const BitVec*>& in) {
  switch (c.kind) {
    case CompKind::kNot:
      return ~*in[0];
    case CompKind::kAnd:
      return *in[0] & *in[1];
    case CompKind::kOr:
      return *in[0] | *in[1];
    case CompKind::kXor:
      return *in[0] ^ *in[1];
    case CompKind::kMux:
      return in[0]->bit(0) ? *in[1] : *in[2];
    case CompKind::kMuxN: {
      // The simulator indexes with the select's low word only.
      const std::uint64_t sel = in[0]->to_u64_lossy();
      const std::size_t n = in.size() - 1;
      return *in[1 + std::min<std::uint64_t>(sel, n - 1)];
    }
    case CompKind::kAdd:
      return *in[0] + *in[1];
    case CompKind::kSub:
      return *in[0] - *in[1];
    case CompKind::kEq:
      return BitVec(1, *in[0] == *in[1] ? 1 : 0);
    case CompKind::kUlt:
      return BitVec(1, in[0]->ult(*in[1]) ? 1 : 0);
    case CompKind::kReduceAnd:
      return BitVec(1, *in[0] == BitVec::ones(in[0]->width()) ? 1 : 0);
    case CompKind::kReduceOr:
      return BitVec(1, in[0]->any() ? 1 : 0);
    case CompKind::kReduceXor:
      return BitVec(1, static_cast<std::uint64_t>(in[0]->popcount() & 1));
    case CompKind::kSlice:
      return in[0]->slice(c.a, c.out.width);
    case CompKind::kConcat: {
      BitVec acc = *in[0];
      for (std::size_t k = 1; k < in.size(); ++k) {
        acc = BitVec::concat(acc, *in[k]);
      }
      return acc;
    }
    case CompKind::kShl:
      return in[0]->shl(c.a);
    case CompKind::kShr:
      return in[0]->shr(c.a);
    default:
      throw util::Error("optimizer cannot fold component kind");
  }
}

void Pipeline::fold_pass(OptimizePassStats& stats) {
  const auto& comps = d.components();
  // Creation order is topological for combinational logic (a component's
  // inputs always exist before it; feedback passes through registers
  // only), so one forward scan propagates constants all the way down.
  for (std::size_t i = 0; i < comps.size(); ++i) {
    const Component& c = comps[i];
    if (!is_comb(c.kind) || !out.comp_alive[i]) continue;
    const auto idx = static_cast<std::int32_t>(i);

    std::vector<Wire> rin(c.in.size());
    std::vector<const BitVec*> cin(c.in.size(), nullptr);
    bool all_const = true;
    for (std::size_t k = 0; k < c.in.size(); ++k) {
      rin[k] = resolve(c.in[k]);
      const BitVec& v = const_of(rin[k].id);
      if (v.empty()) {
        all_const = false;
      } else {
        cin[k] = &v;
      }
    }
    if (all_const) {
      fold_to(idx, c.out, eval_const(c, cin));
      ++stats.rewrites;
      continue;
    }

    auto zero = [&](std::size_t k) { return cin[k] != nullptr && !cin[k]->any(); };
    auto ones = [&](std::size_t k) {
      return cin[k] != nullptr && *cin[k] == BitVec::ones(cin[k]->width());
    };
    auto alias = [&](Wire target) {
      alias_to(idx, c.out, target);
      ++stats.rewrites;
    };
    auto fold = [&](BitVec v) {
      fold_to(idx, c.out, std::move(v));
      ++stats.rewrites;
    };

    switch (c.kind) {
      case CompKind::kAnd:
        if (rin[0].id == rin[1].id) alias(rin[0]);
        else if (zero(0) || zero(1)) fold(BitVec(c.out.width));
        else if (ones(0)) alias(rin[1]);
        else if (ones(1)) alias(rin[0]);
        break;
      case CompKind::kOr:
        if (rin[0].id == rin[1].id) alias(rin[0]);
        else if (ones(0) || ones(1)) fold(BitVec::ones(c.out.width));
        else if (zero(0)) alias(rin[1]);
        else if (zero(1)) alias(rin[0]);
        break;
      case CompKind::kXor:
        if (rin[0].id == rin[1].id) fold(BitVec(c.out.width));
        else if (zero(0)) alias(rin[1]);
        else if (zero(1)) alias(rin[0]);
        break;
      case CompKind::kNot: {
        // Double inversion: not(not(x)) -> x.
        const std::int32_t p = producer[static_cast<std::size_t>(rin[0].id)];
        if (p >= 0 && comps[static_cast<std::size_t>(p)].kind == CompKind::kNot) {
          alias(resolve(comps[static_cast<std::size_t>(p)].in[0]));
        }
        break;
      }
      case CompKind::kMux:
        if (cin[0] != nullptr) alias(cin[0]->bit(0) ? rin[1] : rin[2]);
        else if (rin[1].id == rin[2].id) alias(rin[1]);
        break;
      case CompKind::kMuxN:
        if (cin[0] != nullptr) {
          const std::size_t n = c.in.size() - 1;
          const std::uint64_t sel = cin[0]->to_u64_lossy();
          alias(rin[1 + std::min<std::uint64_t>(sel, n - 1)]);
        } else {
          bool same = true;
          for (std::size_t k = 2; k < rin.size() && same; ++k) {
            same = rin[k].id == rin[1].id;
          }
          if (same) alias(rin[1]);
        }
        break;
      case CompKind::kAdd:
        if (zero(0)) alias(rin[1]);
        else if (zero(1)) alias(rin[0]);
        break;
      case CompKind::kSub:
        if (rin[0].id == rin[1].id) fold(BitVec(c.out.width));
        else if (zero(1)) alias(rin[0]);
        break;
      case CompKind::kEq:
        if (rin[0].id == rin[1].id) fold(BitVec(1, 1));
        break;
      case CompKind::kUlt:
        if (rin[0].id == rin[1].id) fold(BitVec(1));
        break;
      case CompKind::kReduceAnd:
      case CompKind::kReduceOr:
      case CompKind::kReduceXor:
        if (rin[0].width == 1) alias(rin[0]);
        break;
      case CompKind::kSlice:
        if (c.a == 0 && c.out.width == rin[0].width) alias(rin[0]);
        break;
      case CompKind::kConcat:
        if (c.in.size() == 1) alias(rin[0]);
        break;
      case CompKind::kShl:
      case CompKind::kShr:
        if (c.a == 0) alias(rin[0]);
        else if (c.a >= c.out.width) fold(BitVec(c.out.width));
        break;
      default:
        break;
    }
  }
}

std::int64_t Pipeline::dce_sweep() {
  const auto& comps = d.components();
  std::vector<std::uint8_t> needed(static_cast<std::size_t>(d.wire_count()), 0);
  std::vector<std::int32_t> stack;
  auto need = [&](Wire w) {
    if (!w.valid()) return;
    const std::int32_t id = find(w.id);
    if (!needed[static_cast<std::size_t>(id)]) {
      needed[static_cast<std::size_t>(id)] = 1;
      stack.push_back(id);
    }
  };
  // Roots: everything architectural state or the outside world observes.
  for (const Component& c : comps) {
    switch (c.kind) {
      case CompKind::kReg:
      case CompKind::kRamRead:
      case CompKind::kRamWrite:
      case CompKind::kOutput:
        for (const Wire w : c.in) need(w);
        break;
      default:
        break;
    }
  }
  for (const Wire w : opts.keep) need(w);

  while (!stack.empty()) {
    const std::int32_t id = stack.back();
    stack.pop_back();
    const std::int32_t p = producer[static_cast<std::size_t>(id)];
    if (p < 0) continue;
    const auto fit = out.fused.find(p);
    if (fit != out.fused.end()) {
      need(fit->second.in0);
      need(fit->second.in1);
    } else {
      for (const Wire w : comps[static_cast<std::size_t>(p)].in) {
        need(resolve(w));
      }
    }
  }

  std::int64_t removed = 0;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    const Component& c = comps[i];
    if (!is_comb(c.kind) || !out.comp_alive[i]) continue;
    if (!needed[static_cast<std::size_t>(c.out.id)]) {
      out.comp_alive[i] = 0;
      producer[static_cast<std::size_t>(c.out.id)] = -1;
      out.fused.erase(static_cast<std::int32_t>(i));
      ++removed;
    }
  }
  return removed;
}

void Pipeline::cse_pass(OptimizePassStats& stats) {
  const auto& comps = d.components();
  // Hash-consing table: structural key -> representative output wire.
  struct VecHash {
    std::size_t operator()(const std::vector<std::int64_t>& v) const {
      std::size_t h = 0xcbf29ce484222325ull;
      for (const std::int64_t x : v) {
        h ^= static_cast<std::size_t>(x);
        h *= 0x100000001b3ull;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<std::int64_t>, std::int32_t, VecHash> seen;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    const Component& c = comps[i];
    std::vector<std::int64_t> key;
    if (c.kind == CompKind::kConst) {
      // Duplicate constants (same width + value) merge like any other op.
      key.reserve(2 + c.init.words().size());
      key.push_back(static_cast<std::int64_t>(c.kind));
      key.push_back(c.init.width());
      for (const std::uint64_t w : c.init.words()) {
        key.push_back(static_cast<std::int64_t>(w));
      }
    } else if (is_comb(c.kind) && out.comp_alive[i]) {
      key.reserve(3 + c.in.size());
      key.push_back(static_cast<std::int64_t>(c.kind));
      key.push_back(c.a);
      key.push_back(c.out.width);
      std::vector<std::int64_t> ins;
      ins.reserve(c.in.size());
      for (const Wire w : c.in) ins.push_back(find(w.id));
      if (commutative(c.kind)) std::sort(ins.begin(), ins.end());
      key.insert(key.end(), ins.begin(), ins.end());
    } else {
      continue;
    }
    const auto [it, inserted] = seen.emplace(std::move(key), c.out.id);
    if (!inserted) {
      alias_to(static_cast<std::int32_t>(i), c.out,
               Wire{find(it->second), c.out.width});
      ++stats.rewrites;
    }
  }
}

void Pipeline::fuse_pass(OptimizePassStats& stats) {
  const auto& comps = d.components();
  auto single = [&](Wire w) {
    return w.width <= 64;  // one storage word
  };
  // Producer component of a representative wire, but only if that
  // producer is an alive, *unfused* comb op of the wanted kind.
  auto plain_producer_of = [&](Wire w, CompKind kind) -> const Component* {
    const std::int32_t p = producer[static_cast<std::size_t>(w.id)];
    if (p < 0) return nullptr;
    if (out.fused.count(p) != 0) return nullptr;
    const Component& pc = comps[static_cast<std::size_t>(p)];
    return pc.kind == kind ? &pc : nullptr;
  };

  for (std::size_t i = 0; i < comps.size(); ++i) {
    const Component& c = comps[i];
    if (!is_comb(c.kind) || !out.comp_alive[i]) continue;
    const auto idx = static_cast<std::int32_t>(i);

    std::vector<Wire> rin(c.in.size());
    std::vector<const BitVec*> cin(c.in.size(), nullptr);
    for (std::size_t k = 0; k < c.in.size(); ++k) {
      rin[k] = resolve(c.in[k]);
      const BitVec& v = const_of(rin[k].id);
      if (!v.empty() && v.width() <= 64) cin[k] = &v;
    }
    auto fuse = [&](FusedOp op, Wire in0, Wire in1, std::uint64_t imm) {
      out.fused[idx] = FusedComp{op, in0, in1, imm};
      ++stats.rewrites;
    };
    // Binary op with one constant operand -> immediate form. Returns the
    // non-constant operand index or -1.
    auto imm_side = [&]() -> int {
      if (!single(c.out)) return -1;
      if (cin[0] != nullptr && cin[1] == nullptr && single(rin[1])) return 1;
      if (cin[1] != nullptr && cin[0] == nullptr && single(rin[0])) return 0;
      return -1;
    };

    switch (c.kind) {
      case CompKind::kAnd:
      case CompKind::kOr: {
        const bool is_and = c.kind == CompKind::kAnd;
        const int side = imm_side();
        if (side >= 0) {
          fuse(is_and ? FusedOp::kAndImm : FusedOp::kOrImm,
               rin[static_cast<std::size_t>(side)], Wire{},
               cin[static_cast<std::size_t>(1 - side)]->to_u64_lossy());
          break;
        }
        // and/or over an inverter: absorb the kNot.
        if (!single(c.out)) break;
        for (int k = 1; k >= 0; --k) {
          const auto ks = static_cast<std::size_t>(k);
          const Component* inv = plain_producer_of(rin[ks], CompKind::kNot);
          if (inv == nullptr) continue;
          const Wire src = resolve(inv->in[0]);
          if (!single(src)) continue;
          fuse(is_and ? FusedOp::kAndNot : FusedOp::kOrNot,
               rin[static_cast<std::size_t>(1 - k)], src, 0);
          break;
        }
        break;
      }
      case CompKind::kXor: {
        const int side = imm_side();
        if (side >= 0) {
          fuse(FusedOp::kXorImm, rin[static_cast<std::size_t>(side)], Wire{},
               cin[static_cast<std::size_t>(1 - side)]->to_u64_lossy());
        }
        break;
      }
      case CompKind::kEq: {
        const int side = imm_side();
        if (side >= 0) {
          fuse(FusedOp::kEqImm, rin[static_cast<std::size_t>(side)], Wire{},
               cin[static_cast<std::size_t>(1 - side)]->to_u64_lossy());
        }
        break;
      }
      case CompKind::kNot: {
        // Inverted compare-to-constant: not(eq(x, k)) -> x != k.
        if (c.out.width != 1) break;
        const Component* eq = plain_producer_of(rin[0], CompKind::kEq);
        if (eq == nullptr) break;
        const Wire a = resolve(eq->in[0]);
        const Wire b = resolve(eq->in[1]);
        const BitVec& ca = const_of(a.id);
        const BitVec& cb = const_of(b.id);
        if (!cb.empty() && cb.width() <= 64 && single(a)) {
          fuse(FusedOp::kNeImm, a, Wire{}, cb.to_u64_lossy());
        } else if (!ca.empty() && ca.width() <= 64 && single(b)) {
          fuse(FusedOp::kNeImm, b, Wire{}, ca.to_u64_lossy());
        }
        break;
      }
      case CompKind::kUlt: {
        if (!single(c.out)) break;
        if (cin[1] != nullptr && cin[0] == nullptr && single(rin[0])) {
          fuse(FusedOp::kUltImm, rin[0], Wire{}, cin[1]->to_u64_lossy());
        } else if (cin[0] != nullptr && cin[1] == nullptr && single(rin[1])) {
          fuse(FusedOp::kImmUlt, rin[1], Wire{}, cin[0]->to_u64_lossy());
        }
        break;
      }
      case CompKind::kAdd: {
        const int side = imm_side();
        if (side >= 0) {
          fuse(FusedOp::kAddImm, rin[static_cast<std::size_t>(side)], Wire{},
               cin[static_cast<std::size_t>(1 - side)]->to_u64_lossy());
        }
        break;
      }
      case CompKind::kSub: {
        if (single(c.out) && cin[1] != nullptr && cin[0] == nullptr &&
            single(rin[0])) {
          fuse(FusedOp::kSubImm, rin[0], Wire{}, cin[1]->to_u64_lossy());
        }
        break;
      }
      case CompKind::kSlice: {
        // Slice-of-concat forwarding: a slice landing entirely inside one
        // concat part reads that part directly (zero-pad resize chains
        // collapse this way).
        const Component* cat = plain_producer_of(rin[0], CompKind::kConcat);
        if (cat == nullptr) break;
        int part_lo = 0;  // in[n-1] is the least significant part
        for (std::size_t k = cat->in.size(); k-- > 0;) {
          const Wire part = resolve(cat->in[k]);
          if (c.a >= part_lo && c.a + c.out.width <= part_lo + part.width) {
            const int off = c.a - part_lo;
            if (off == 0 && c.out.width == part.width) {
              alias_to(idx, c.out, part);
              ++stats.rewrites;
            } else if (single(part) && single(c.out)) {
              fuse(FusedOp::kSliceImm, part, Wire{},
                   static_cast<std::uint64_t>(off));
            }
            break;
          }
          part_lo += part.width;
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

const OptimizePassStats* OptimizeReport::pass(const std::string& name) const {
  for (const auto& p : passes) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string OptimizeReport::to_string() const {
  std::ostringstream os;
  os << "optimizer: " << ops_before << " -> " << ops_after << " comb ops";
  for (const auto& p : passes) {
    os << "; " << p.name << " " << p.ops_before << "->" << p.ops_after << " ("
       << p.rewrites << " rewrites)";
  }
  os << "; " << wires_aliased << " wires aliased, " << wires_folded
     << " folded";
  return os.str();
}

OptimizedNetlist optimize(const Design& design, const OptimizeOptions& opts) {
  Pipeline p(design, opts);
  OptimizeReport& rep = p.out.report;
  rep.ops_before = p.live_ops();

  auto run = [&](const char* name, bool enabled, auto&& body) {
    OptimizePassStats s;
    s.name = name;
    s.ops_before = p.live_ops();
    if (enabled) body(s);
    s.ops_after = p.live_ops();
    rep.passes.push_back(std::move(s));
  };

  run("fold", opts.fold, [&](OptimizePassStats& s) { p.fold_pass(s); });
  run("dce", opts.dce, [&](OptimizePassStats& s) { s.rewrites = p.dce_sweep(); });
  run("cse", opts.cse, [&](OptimizePassStats& s) { p.cse_pass(s); });
  run("fuse", opts.fuse, [&](OptimizePassStats& s) {
    p.fuse_pass(s);
    // Fusion bypasses inverters / compares / concats; sweep whatever is
    // now unconsumed so the tape doesn't dispatch orphans.
    if (opts.dce) p.dce_sweep();
  });

  rep.ops_after = p.live_ops();

  // Flatten forwarding chains so consumers can resolve in one step.
  for (std::int32_t w = 0; w < design.wire_count(); ++w) p.find(w);
  return std::move(p.out);
}

}  // namespace atlantis::chdl
