// Application-side view of a simulated design's host interface.
//
// This is the piece that realizes the paper's CHDL claim: "the developer
// uses the original application to simulate the designs". The application
// talks to HostInterface exactly as it would talk to the board driver —
// register writes, register reads, block transfers — and HostInterface
// turns those calls into pokes and clock edges on the Simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chdl/sim.hpp"

namespace atlantis::chdl {

class HostInterface {
 public:
  /// The design must expose host_addr/host_wdata/host_we/host_rdata
  /// (see HostRegFile). `clock` is the domain those registers live in.
  explicit HostInterface(Simulator& sim, ClockId clock = {});

  /// One register write: address + data presented for one clock edge.
  void write(std::uint32_t addr, std::uint64_t data);

  /// One register read (combinational read-back; no clock consumed).
  std::uint64_t read(std::uint32_t addr);

  /// Burst write: one word per cycle to the same address — how the DMA
  /// engine pushes a block into a design-side FIFO port.
  void write_block(std::uint32_t addr, std::span<const std::uint64_t> data);

  /// Burst read: `count` reads of the same address, stepping the clock
  /// between words (for designs that pop a FIFO on read strobes, pair
  /// this with a read-advance register write per word).
  std::vector<std::uint64_t> read_block(std::uint32_t addr, std::size_t count);

  /// Runs the design for `n` idle cycles.
  void idle(int n);

  Simulator& sim() { return sim_; }

 private:
  Simulator& sim_;
  ClockId clock_;
  Wire addr_;
  Wire wdata_;
  Wire we_;
  Wire rdata_;
};

}  // namespace atlantis::chdl
