#include "chdl/builder.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::chdl {

Wire counter(Design& d, const std::string& name, int width, Wire enable,
             Wire clear, ClockId clock) {
  RegOpts opts;
  opts.clock = clock;
  opts.enable = enable;
  opts.reset = clear;
  const Wire q = d.reg_forward(name, width, opts);
  const Wire one = d.constant(width, 1);
  d.reg_connect(q, d.add(q, one));
  return q;
}

int rom_from_u64(Design& d, const std::string& name,
                 const std::vector<std::uint64_t>& words, int width,
                 ClockId clock) {
  ATLANTIS_CHECK(width > 0 && width <= 64, "rom_from_u64 width must be <= 64");
  std::vector<BitVec> contents;
  contents.reserve(words.size());
  for (const std::uint64_t w : words) contents.emplace_back(width, w);
  return d.add_rom(name, std::move(contents), clock);
}

Wire adder_tree(Design& d, std::vector<Wire> terms) {
  ATLANTIS_CHECK(!terms.empty(), "adder_tree needs at least one term");
  while (terms.size() > 1) {
    std::vector<Wire> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      const int w = std::max(terms[i].width, terms[i + 1].width) + 1;
      next.push_back(d.add(d.resize(terms[i], w), d.resize(terms[i + 1], w)));
    }
    if (terms.size() % 2 != 0) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.front();
}

Wire popcount(Design& d, Wire value) {
  std::vector<Wire> bits;
  bits.reserve(static_cast<std::size_t>(value.width));
  for (int i = 0; i < value.width; ++i) bits.push_back(d.bit(value, i));
  return adder_tree(d, std::move(bits));
}

Wire eq_const(Design& d, Wire a, std::uint64_t value) {
  return d.eq(a, d.constant(a.width, value));
}

Wire replicate(Design& d, Wire bit, int width) {
  ATLANTIS_CHECK(bit.width == 1, "replicate takes a single bit");
  std::vector<Wire> lanes(static_cast<std::size_t>(width), bit);
  return d.concat(lanes);
}

Wire multiply(Design& d, Wire a, Wire b) {
  const int out_width = a.width + b.width;
  std::vector<Wire> partials;
  partials.reserve(static_cast<std::size_t>(b.width));
  const Wire a_wide = d.resize(a, out_width);
  for (int i = 0; i < b.width; ++i) {
    const Wire mask = replicate(d, d.bit(b, i), out_width);
    partials.push_back(d.shl(d.band(a_wide, mask), i));
  }
  return d.resize(adder_tree(d, std::move(partials)), out_width);
}

HostRegFile::HostRegFile(Design& d, int addr_bits, int data_bits,
                         ClockId clock)
    : d_(d), addr_bits_(addr_bits), data_bits_(data_bits), clock_(clock) {
  ATLANTIS_CHECK(addr_bits > 0 && addr_bits <= 32, "bad host address width");
  ATLANTIS_CHECK(data_bits > 0 && data_bits <= 64, "bad host data width");
  addr_ = d_.input("host_addr", addr_bits);
  wdata_ = d_.input("host_wdata", data_bits);
  we_ = d_.input("host_we", 1);
}

Wire HostRegFile::write_strobe(std::uint32_t addr) {
  return d_.band(we_, eq_const(d_, addr_, addr));
}

Wire HostRegFile::write_reg(const std::string& name, std::uint32_t addr,
                            int width) {
  ATLANTIS_CHECK(width > 0 && width <= data_bits_,
                 "register wider than the host data bus");
  RegOpts opts;
  opts.clock = clock_;
  opts.enable = write_strobe(addr);
  const Wire q = d_.reg(name, d_.resize(wdata_, width), opts);
  map_read(addr, q);
  return q;
}

void HostRegFile::map_read(std::uint32_t addr, Wire value) {
  ATLANTIS_CHECK(!finished_, "HostRegFile already finished");
  ATLANTIS_CHECK(read_map_.find(addr) == read_map_.end(),
                 "host address mapped twice");
  read_map_[addr] = value;
}

void HostRegFile::finish() {
  ATLANTIS_CHECK(!finished_, "HostRegFile already finished");
  Wire rdata = d_.constant(data_bits_, 0);
  for (const auto& [addr, value] : read_map_) {
    rdata = d_.mux(eq_const(d_, addr_, addr), d_.resize(value, data_bits_),
                   rdata);
  }
  d_.output("host_rdata", rdata);
  finished_ = true;
}

}  // namespace atlantis::chdl
