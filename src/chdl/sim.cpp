#include "chdl/sim.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "chdl/threaded.hpp"
#include "util/bitops.hpp"

namespace atlantis::chdl {
namespace {

int words_for(int width) { return BitVec::word_count(width); }

std::uint64_t width_mask(int width) {
  return width >= 64 ? ~std::uint64_t{0} : util::low_mask(width);
}

void mask_top_word(std::uint64_t* p, int width) {
  const int rem = width % 64;
  if (rem != 0) p[(width - 1) / 64] &= util::low_mask(rem);
}

bool get_bit(const std::uint64_t* p, int i) {
  return ((p[i / 64] >> (i % 64)) & 1) != 0;
}

void set_bit(std::uint64_t* p, int i, bool v) {
  const std::uint64_t m = std::uint64_t{1} << (i % 64);
  if (v) {
    p[i / 64] |= m;
  } else {
    p[i / 64] &= ~m;
  }
}

/// Copies n bits from src[src_lo..] to dst[dst_lo..]. Bit-granular; hot
/// designs keep buses <= 64 bits where the word fast paths apply instead.
void copy_bits(std::uint64_t* dst, int dst_lo, const std::uint64_t* src,
               int src_lo, int n) {
  for (int i = 0; i < n; ++i) set_bit(dst, dst_lo + i, get_bit(src, src_lo + i));
}

}  // namespace

Simulator::Simulator(const Design& design, const SimOptions& options)
    : design_(design), mode_(options.mode),
      auto_threaded_min_ops_(options.auto_threaded_min_ops),
      region_opts_(options.region) {
  design.check_complete();
  if (options.optimize) opt_.emplace(optimize(design, options.opt));
  // Allocate one flat slot per wire. A wire the optimizer forwarded
  // shares its representative's slot (the representative always has a
  // smaller id, so its slot is already assigned); pokes, peeks and VCD
  // dumps then observe optimized-away wires with zero extra machinery.
  slots_.resize(static_cast<std::size_t>(design.wire_count()));
  std::int32_t offset = 0;
  std::int32_t max_words = 1;
  for (std::int32_t id = 0; id < design.wire_count(); ++id) {
    auto& s = slots_[static_cast<std::size_t>(id)];
    if (opt_) {
      const std::int32_t rep = opt_->forward[static_cast<std::size_t>(id)];
      if (rep != id) {
        s = slots_[static_cast<std::size_t>(rep)];
        continue;
      }
    }
    const int width = design.wire_width(id);
    s.offset = offset;
    s.width = width;
    s.words = words_for(width);
    max_words = std::max(max_words, s.words);
    offset += s.words;
  }
  values_.assign(static_cast<std::size_t>(offset), 0);
  stage_.assign(static_cast<std::size_t>(offset), 0);
  scratch_.assign(static_cast<std::size_t>(max_words), 0);

  is_input_.assign(slots_.size(), 0);
  for (const auto& [name, w] : design.inputs()) {
    is_input_[static_cast<std::size_t>(w.id)] = 1;
  }

  // RAM storage.
  ram_data_.resize(design.rams().size());
  ram_stride_.resize(design.rams().size());
  for (std::size_t r = 0; r < design.rams().size(); ++r) {
    const RamBlock& blk = design.rams()[r];
    ram_stride_[r] = words_for(blk.width);
    ram_data_[r].assign(
        static_cast<std::size_t>(blk.words) * ram_stride_[r], 0);
  }

  cycle_count_.assign(static_cast<std::size_t>(design.clock_count()), 0);
  levelize();
  if (opt_) {
    // An aliased component's output shares its representative's storage
    // slot, so the full sweep must never evaluate it: kinds that
    // zero-fill the destination before reading (shift, slice, concat)
    // would wipe their own input when the alias points at it. The
    // representative keeps the shared slot up to date.
    std::erase_if(comb_order_, [&](std::int32_t i) {
      const Wire w = design.components()[static_cast<std::size_t>(i)].out;
      return opt_->forward[static_cast<std::size_t>(w.id)] != w.id;
    });
    // CSE can alias a wire to a representative that is *not* among its
    // transitive dependencies (two independent duplicate computations),
    // so the Kahn order of the original graph no longer sequences the
    // representative's producer before the alias's consumers. Creation
    // order does: every input wire id precedes its consumer's output id,
    // and the optimizer only ever rewrites inputs to earlier wires.
    std::sort(comb_order_.begin(), comb_order_.end());
  }
  compile_tape();

  // Dead-but-observable logic: comb components the optimizer dropped
  // from the tape without replacing their output (not aliased, not
  // folded to a constant). They are re-evaluated lazily so peeks of
  // their wires stay bit-identical to the unoptimized engine.
  wire_lazy_.assign(slots_.size(), 0);
  if (opt_) {
    const auto& comps = design.components();
    for (const std::int32_t i : comb_order_) {
      if (opt_->comp_alive[static_cast<std::size_t>(i)]) continue;
      const Component& c = comps[static_cast<std::size_t>(i)];
      const std::int32_t id = c.out.id;
      if (opt_->forward[static_cast<std::size_t>(id)] != id) continue;
      if (opt_->folded(id)) continue;
      lazy_comps_.push_back(i);
      wire_lazy_[static_cast<std::size_t>(id)] = 1;
    }
  }
  if (mode_ == EvalMode::kAuto) mode_ = resolve_auto();
  if (mode_ == EvalMode::kThreaded) ensure_threaded();
  reset();
}

EvalMode Simulator::resolve_auto() const {
  return tape_.size() >= auto_threaded_min_ops_ ? EvalMode::kThreaded
                                                : EvalMode::kEventDriven;
}

Simulator::~Simulator() = default;

void Simulator::ensure_threaded() {
  if (!threaded_) {
    threaded_ = std::make_unique<ThreadedBackend>(*this, region_opts_);
  }
}

RegionGraph Simulator::region_graph() const {
  RegionGraph g;
  g.wire_count = design_.wire_count();
  g.in_begin = tape_in_begin_;
  g.in_wires = tape_in_wires_;
  g.out_wire.reserve(tape_.size());
  for (const Op& op : tape_) g.out_wire.push_back(op.out_wire);
  g.wire_seq_consumed.assign(slots_.size(), 0);
  const auto& comps = design_.components();
  for (const std::int32_t i : seq_comps_) {
    for (const Wire w : comps[static_cast<std::size_t>(i)].in) {
      if (!w.valid()) continue;
      const Wire r = opt_ ? opt_->rep(w) : w;
      g.wire_seq_consumed[static_cast<std::size_t>(r.id)] = 1;
    }
  }
  return g;
}

const RegionPlan* Simulator::region_plan() const {
  return threaded_ ? &threaded_->plan() : nullptr;
}

void Simulator::levelize() {
  const auto& comps = design_.components();
  // Producer component for each wire (combinational components only).
  std::vector<std::int32_t> producer(slots_.size(), -1);
  std::vector<std::int32_t> comb;
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(comps.size()); ++i) {
    const Component& c = comps[static_cast<std::size_t>(i)];
    switch (c.kind) {
      case CompKind::kReg:
      case CompKind::kRamRead:
      case CompKind::kRamWrite:
        seq_comps_.push_back(i);
        break;
      case CompKind::kInput:
      case CompKind::kConst:
      case CompKind::kOutput:
        break;
      default:
        comb.push_back(i);
        if (c.out.valid()) producer[static_cast<std::size_t>(c.out.id)] = i;
        break;
    }
  }
  // Kahn's algorithm over the comb-only dependency graph.
  std::vector<std::int32_t> indegree(comps.size(), 0);
  std::vector<std::vector<std::int32_t>> dependents(comps.size());
  for (const std::int32_t i : comb) {
    const Component& c = comps[static_cast<std::size_t>(i)];
    for (const Wire w : c.in) {
      if (!w.valid()) continue;
      const std::int32_t p = producer[static_cast<std::size_t>(w.id)];
      if (p >= 0) {
        ++indegree[static_cast<std::size_t>(i)];
        dependents[static_cast<std::size_t>(p)].push_back(i);
      }
    }
  }
  std::vector<std::int32_t> ready;
  for (const std::int32_t i : comb) {
    if (indegree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  comb_order_.clear();
  comb_order_.reserve(comb.size());
  while (!ready.empty()) {
    const std::int32_t i = ready.back();
    ready.pop_back();
    comb_order_.push_back(i);
    for (const std::int32_t d : dependents[static_cast<std::size_t>(i)]) {
      if (--indegree[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
    }
  }
  if (comb_order_.size() != comb.size()) {
    // Find one offender for the message.
    for (const std::int32_t i : comb) {
      if (indegree[static_cast<std::size_t>(i)] > 0) {
        throw util::Error("combinational cycle in design '" + design_.name() +
                          "' involving component #" + std::to_string(i));
      }
    }
  }
}

void Simulator::compile_tape() {
  const auto& comps = design_.components();
  // Topological level of each comb component's producing op.
  std::vector<std::int32_t> level_of_wire(slots_.size(), -1);
  tape_.clear();
  tape_.reserve(comb_order_.size());
  // Effective inputs per tape op: the component's inputs resolved
  // through the optimizer's forwarding map, or the fused operands when
  // the peephole pass rewrote the op. Used for levels, word offsets and
  // the fanout table so dirtiness propagates along the optimized graph.
  std::vector<std::vector<Wire>> tape_ins;
  tape_ins.reserve(comb_order_.size());
  int max_level = 0;
  // The tape is laid down in component-creation order, NOT comb_order_:
  // creation order is topological for the elaborated graph (a
  // component's inputs always exist before it), and it stays topological
  // after optimization because every rewrite (alias, CSE representative,
  // fused operand) points at an earlier-created wire. comb_order_ is
  // only a topological order of the *original* graph — a CSE
  // representative need not precede its merged twin's consumers there.
  std::vector<std::int32_t> creation_order(comb_order_);
  std::sort(creation_order.begin(), creation_order.end());
  for (const std::int32_t i : creation_order) {
    if (opt_ && !opt_->comp_alive[static_cast<std::size_t>(i)]) continue;
    const Component& c = comps[static_cast<std::size_t>(i)];
    const WireSlot& out = slots_[static_cast<std::size_t>(c.out.id)];
    Op op;
    op.kind = c.kind;
    op.comp = i;
    op.out_wire = c.out.id;
    op.out_off = out.offset;
    op.out_words = out.words;
    op.out_mask = width_mask(out.width);

    const FusedComp* fc = nullptr;
    if (opt_) {
      const auto it = opt_->fused.find(i);
      if (it != opt_->fused.end()) fc = &it->second;
    }
    std::vector<Wire> ins;
    if (fc != nullptr) {
      ins.push_back(fc->in0);
      if (fc->in1.valid()) ins.push_back(fc->in1);
    } else {
      ins.reserve(c.in.size());
      for (const Wire w : c.in) {
        if (!w.valid()) continue;
        ins.push_back(opt_ ? opt_->rep(w) : w);
      }
    }
    for (const Wire w : ins) {
      const std::int32_t lw = level_of_wire[static_cast<std::size_t>(w.id)];
      op.level = std::max(op.level, lw + 1);
    }
    level_of_wire[static_cast<std::size_t>(c.out.id)] = op.level;
    max_level = std::max(max_level, op.level);

    // Single-word fast path: output and every input fit one word and the
    // operand layout maps onto the fixed in0/in1/in2 offsets.
    auto all_single = [&] {
      if (out.words != 1) return false;
      for (const Wire w : ins) {
        if (slots_[static_cast<std::size_t>(w.id)].words != 1) return false;
      }
      return true;
    };
    if (fc != nullptr) {
      // Fused opcodes are produced only for single-word operands.
      op.fused = fc->op;
      op.imm = fc->imm;
      op.single = true;
    } else {
      switch (c.kind) {
        case CompKind::kNot:
        case CompKind::kAnd:
        case CompKind::kOr:
        case CompKind::kXor:
        case CompKind::kMux:
        case CompKind::kAdd:
        case CompKind::kSub:
        case CompKind::kEq:
        case CompKind::kUlt:
        case CompKind::kReduceAnd:
        case CompKind::kReduceOr:
        case CompKind::kReduceXor:
          op.single = all_single();
          break;
        case CompKind::kSlice:
        case CompKind::kShl:
        case CompKind::kShr:
          // c.a >= 64 would make the word shift UB; the general path
          // handles those (they are all-zero results anyway).
          op.single = all_single() && c.a < 64;
          op.a = c.a;
          break;
        case CompKind::kConcat:
          // Two-part {hi, lo} concat compiles to shift+or; `a` holds the
          // low part's width.
          op.single = all_single() && ins.size() == 2;
          if (op.single) op.a = ins[1].width;
          break;
        default:
          break;  // kMuxN and anything else stays on the general path
      }
    }
    if (op.single) {
      auto off = [&](std::size_t k) {
        return slots_[static_cast<std::size_t>(ins[k].id)].offset;
      };
      if (ins.size() > 0) op.in0 = off(0);
      if (ins.size() > 1) op.in1 = off(1);
      if (ins.size() > 2) op.in2 = off(2);
      if (fc == nullptr && c.kind == CompKind::kReduceAnd) {
        op.in_mask = width_mask(ins[0].width);
      }
    }
    tape_.push_back(op);
    tape_ins.push_back(std::move(ins));
  }
  level_queue_.assign(static_cast<std::size_t>(max_level + 1), {});
  queued_.assign(tape_.size(), 0);

  // Retain the per-op input wires as a CSR: the threaded backend's
  // region compiler consumes them (Simulator::region_graph).
  tape_in_begin_.assign(tape_.size() + 1, 0);
  tape_in_wires_.clear();
  for (std::size_t t = 0; t < tape_ins.size(); ++t) {
    for (const Wire w : tape_ins[t]) tape_in_wires_.push_back(w.id);
    tape_in_begin_[t + 1] = static_cast<std::int32_t>(tape_in_wires_.size());
  }

  // Per-wire fanout CSR: wire id -> tape ops that consume it.
  std::vector<std::int32_t> counts(slots_.size() + 1, 0);
  for (const auto& ins : tape_ins) {
    for (const Wire w : ins) ++counts[static_cast<std::size_t>(w.id)];
  }
  fan_begin_.assign(slots_.size() + 1, 0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    fan_begin_[i + 1] = fan_begin_[i] + counts[i];
  }
  fan_ops_.assign(static_cast<std::size_t>(fan_begin_.back()), 0);
  std::vector<std::int32_t> cursor(fan_begin_.begin(), fan_begin_.end() - 1);
  for (std::int32_t t = 0; t < static_cast<std::int32_t>(tape_.size()); ++t) {
    for (const Wire w : tape_ins[static_cast<std::size_t>(t)]) {
      fan_ops_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(w.id)]++)] = t;
    }
  }
}

void Simulator::mark_wire_dirty(std::int32_t wire_id) {
  const std::int32_t begin = fan_begin_[static_cast<std::size_t>(wire_id)];
  const std::int32_t end = fan_begin_[static_cast<std::size_t>(wire_id) + 1];
  for (std::int32_t i = begin; i < end; ++i) {
    const std::int32_t t = fan_ops_[static_cast<std::size_t>(i)];
    if (!queued_[static_cast<std::size_t>(t)]) {
      queued_[static_cast<std::size_t>(t)] = 1;
      level_queue_[static_cast<std::size_t>(
          tape_[static_cast<std::size_t>(t)].level)].push_back(t);
      ++dirty_count_;
    }
  }
}

void Simulator::mark_all_dirty() {
  for (auto& q : level_queue_) q.clear();
  std::fill(queued_.begin(), queued_.end(), 1);
  for (std::int32_t t = 0; t < static_cast<std::int32_t>(tape_.size()); ++t) {
    level_queue_[static_cast<std::size_t>(
        tape_[static_cast<std::size_t>(t)].level)].push_back(t);
  }
  dirty_count_ = static_cast<std::int64_t>(tape_.size());
  comb_dirty_ = true;
  lazy_stale_ = true;
  if (threaded_) threaded_->mark_all();
}

void Simulator::set_eval_mode(EvalMode mode) {
  if (mode == EvalMode::kAuto) mode = resolve_auto();
  if (mode == mode_) return;
  mode_ = mode;
  if (mode == EvalMode::kThreaded) ensure_threaded();
  // Everything is re-evaluated on the next peek/step so stale values
  // cannot leak across the policy switch: marks only land on the active
  // backend's worklists while a mode runs, so the rebuild here is what
  // makes a mid-run switch sound.
  mark_all_dirty();
}

void Simulator::reset() {
  // Fresh measurement epoch (see header): pre-reset work must not be
  // double-counted by speed reports that reset + drive + read activity.
  activity_ = {};
  std::fill(values_.begin(), values_.end(), 0);
  const auto& comps = design_.components();
  for (const Component& c : comps) {
    if (c.kind == CompKind::kConst || c.kind == CompKind::kReg) {
      store(c.out, c.init);
    }
  }
  // Wires the optimizer proved constant: written once here, their
  // producers never appear on the tape again.
  if (opt_) {
    for (std::int32_t id = 0; id < design_.wire_count(); ++id) {
      const BitVec& v = opt_->fold_value[static_cast<std::size_t>(id)];
      if (!v.empty()) store(Wire{id, v.width()}, v);
    }
  }
  // ROM contents (and zero for RAMs).
  for (std::size_t r = 0; r < design_.rams().size(); ++r) {
    const RamBlock& blk = design_.rams()[r];
    if (!blk.init.empty()) {
      for (std::size_t a = 0; a < blk.init.size(); ++a) {
        const auto& w = blk.init[a].words();
        std::copy(w.begin(), w.end(),
                  ram_data_[r].begin() +
                      static_cast<std::ptrdiff_t>(a) * ram_stride_[r]);
      }
    } else {
      std::fill(ram_data_[r].begin(), ram_data_[r].end(), 0);
    }
  }
  std::fill(cycle_count_.begin(), cycle_count_.end(), 0);
  mark_all_dirty();
}

void Simulator::save_state(sim::SnapshotWriter& w) const {
  // Only primary state goes into the stream. Worklists, shadow values
  // and region plans are derived; load_state rebuilds them.
  w.put_string(design_.name());
  w.put_words(values_);
  w.put_u32(static_cast<std::uint32_t>(ram_data_.size()));
  for (const std::vector<std::uint64_t>& ram : ram_data_) w.put_words(ram);
  w.put_words(cycle_count_);
  w.put_u64(activity_.comp_evals);
  w.put_u64(activity_.comp_changes);
  w.put_u64(activity_.edges);
}

void Simulator::load_state(sim::SnapshotReader& r) {
  const std::string name = r.get_string();
  ATLANTIS_CHECK(name == design_.name(),
                 "snapshot was taken from design '" + name + "', not '" +
                     design_.name() + "'");
  std::vector<std::uint64_t> values = r.get_words();
  ATLANTIS_CHECK(values.size() == values_.size(),
                 "snapshot wire storage shape mismatch");
  const std::uint32_t n_rams = r.get_u32();
  ATLANTIS_CHECK(n_rams == ram_data_.size(), "snapshot RAM count mismatch");
  std::vector<std::vector<std::uint64_t>> rams;
  rams.reserve(n_rams);
  for (std::uint32_t i = 0; i < n_rams; ++i) {
    rams.push_back(r.get_words());
    ATLANTIS_CHECK(rams.back().size() == ram_data_[i].size(),
                   "snapshot RAM shape mismatch");
  }
  std::vector<std::uint64_t> cycles = r.get_words();
  ATLANTIS_CHECK(cycles.size() == cycle_count_.size(),
                 "snapshot clock domain count mismatch");
  values_ = std::move(values);
  ram_data_ = std::move(rams);
  cycle_count_ = std::move(cycles);
  activity_.comp_evals = r.get_u64();
  activity_.comp_changes = r.get_u64();
  activity_.edges = r.get_u64();
  // Re-derive everything else: with all ops marked dirty, the next
  // evaluation recomputes every combinational value from the restored
  // wires — a pure function of them — so all three backends converge to
  // the same fixed point the saved simulator held.
  mark_all_dirty();
}

void Simulator::store(Wire w, const BitVec& v) {
  ATLANTIS_CHECK(v.width() == w.width, "value width mismatch");
  const WireSlot& s = slots_[static_cast<std::size_t>(w.id)];
  std::copy(v.words().begin(), v.words().end(), values_.begin() + s.offset);
}

BitVec Simulator::load(Wire w) const {
  const WireSlot& s = slots_[static_cast<std::size_t>(w.id)];
  BitVec v(w.width);
  std::copy(values_.begin() + s.offset, values_.begin() + s.offset + s.words,
            v.words().begin());
  return v;
}

void Simulator::poke(Wire input, const BitVec& value) {
  ATLANTIS_CHECK(input.valid() &&
                     input.id < static_cast<std::int32_t>(is_input_.size()) &&
                     is_input_[static_cast<std::size_t>(input.id)] != 0,
                 "poke target is not a design input");
  ATLANTIS_CHECK(value.width() == input.width, "value width mismatch");
  const WireSlot& s = slots_[static_cast<std::size_t>(input.id)];
  std::uint64_t* dst = values_.data() + s.offset;
  if (std::equal(value.words().begin(), value.words().end(), dst)) {
    return;  // unchanged input: nothing downstream can change
  }
  std::copy(value.words().begin(), value.words().end(), dst);
  if (mode_ == EvalMode::kThreaded) {
    threaded_->mark_wire(input.id);
  } else {
    mark_wire_dirty(input.id);
  }
  comb_dirty_ = true;
  lazy_stale_ = true;
}

void Simulator::poke(const std::string& port, std::uint64_t value) {
  const Wire w = design_.port(port);
  poke(w, BitVec(w.width, value));
}

BitVec Simulator::peek(Wire w) {
  eval_comb();
  if (lazy_stale_ && w.valid() &&
      wire_lazy_[static_cast<std::size_t>(w.id)] != 0) {
    refresh_lazy();
  }
  return load(w);
}

void Simulator::refresh_lazy() {
  // Observability path only: brings DCE'd logic up to date for a peek.
  // Deliberately not counted in activity_ — the op tape never ran these.
  const auto& comps = design_.components();
  for (const std::int32_t i : lazy_comps_) {
    const Component& c = comps[static_cast<std::size_t>(i)];
    eval_comp(c, values_.data() +
                     slots_[static_cast<std::size_t>(c.out.id)].offset);
  }
  lazy_stale_ = false;
}

std::uint64_t Simulator::peek_u64(Wire w) { return peek(w).to_u64(); }

std::uint64_t Simulator::peek_u64(const std::string& port) {
  return peek_u64(design_.port(port));
}

void Simulator::eval_comb() {
  if (mode_ == EvalMode::kThreaded) {
    threaded_->eval();
    comb_dirty_ = false;
    return;
  }
  if (mode_ == EvalMode::kFullSweep) {
    if (!comb_dirty_) return;
    const auto& comps = design_.components();
    for (const std::int32_t i : comb_order_) {
      const Component& c = comps[static_cast<std::size_t>(i)];
      eval_comp(c, values_.data() +
                       slots_[static_cast<std::size_t>(c.out.id)].offset);
    }
    activity_.comp_evals += comb_order_.size();
    comb_dirty_ = false;
    lazy_stale_ = false;  // the sweep covers DCE'd components too
    // The worklist may still hold entries from pokes/commits; they are
    // all up to date now.
    for (auto& q : level_queue_) q.clear();
    std::fill(queued_.begin(), queued_.end(), 0);
    dirty_count_ = 0;
    return;
  }
  if (dirty_count_ == 0) return;
  for (auto& q : level_queue_) {
    // Dependents always live at strictly higher levels, so this queue
    // cannot grow while it is being drained.
    for (const std::int32_t t : q) {
      queued_[static_cast<std::size_t>(t)] = 0;
      const Op& op = tape_[static_cast<std::size_t>(t)];
      if (eval_op(op)) {
        ++activity_.comp_changes;
        mark_wire_dirty(op.out_wire);
      }
    }
    q.clear();
  }
  dirty_count_ = 0;
  comb_dirty_ = false;
}

bool Simulator::eval_op(const Op& op) {
  ++activity_.comp_evals;
  if (op.fused != FusedOp::kNone) {
    // Peephole-fused single-word opcodes (see chdl/optimize.hpp).
    const std::uint64_t* v = values_.data();
    std::uint64_t r = 0;
    switch (op.fused) {
      case FusedOp::kAndNot:
        r = v[op.in0] & ~v[op.in1] & op.out_mask;
        break;
      case FusedOp::kOrNot:
        r = (v[op.in0] | ~v[op.in1]) & op.out_mask;
        break;
      case FusedOp::kEqImm:
        r = v[op.in0] == op.imm ? 1 : 0;
        break;
      case FusedOp::kNeImm:
        r = v[op.in0] != op.imm ? 1 : 0;
        break;
      case FusedOp::kUltImm:
        r = v[op.in0] < op.imm ? 1 : 0;
        break;
      case FusedOp::kImmUlt:
        r = op.imm < v[op.in0] ? 1 : 0;
        break;
      case FusedOp::kAddImm:
        r = (v[op.in0] + op.imm) & op.out_mask;
        break;
      case FusedOp::kSubImm:
        r = (v[op.in0] - op.imm) & op.out_mask;
        break;
      case FusedOp::kAndImm:
        r = v[op.in0] & op.imm;
        break;
      case FusedOp::kOrImm:
        r = v[op.in0] | op.imm;
        break;
      case FusedOp::kXorImm:
        r = v[op.in0] ^ op.imm;
        break;
      case FusedOp::kSliceImm:
        r = (v[op.in0] >> op.imm) & op.out_mask;
        break;
      case FusedOp::kNone:
        break;
    }
    std::uint64_t& out = values_[static_cast<std::size_t>(op.out_off)];
    if (out == r) return false;
    out = r;
    return true;
  }
  if (op.single) {
    const std::uint64_t* v = values_.data();
    std::uint64_t r = 0;
    switch (op.kind) {
      case CompKind::kNot:
        r = ~v[op.in0] & op.out_mask;
        break;
      case CompKind::kAnd:
        r = v[op.in0] & v[op.in1];
        break;
      case CompKind::kOr:
        r = v[op.in0] | v[op.in1];
        break;
      case CompKind::kXor:
        r = v[op.in0] ^ v[op.in1];
        break;
      case CompKind::kMux:
        r = (v[op.in0] & 1) != 0 ? v[op.in1] : v[op.in2];
        break;
      case CompKind::kAdd:
        r = (v[op.in0] + v[op.in1]) & op.out_mask;
        break;
      case CompKind::kSub:
        r = (v[op.in0] - v[op.in1]) & op.out_mask;
        break;
      case CompKind::kEq:
        r = v[op.in0] == v[op.in1] ? 1 : 0;
        break;
      case CompKind::kUlt:
        r = v[op.in0] < v[op.in1] ? 1 : 0;
        break;
      case CompKind::kReduceAnd:
        r = v[op.in0] == op.in_mask ? 1 : 0;
        break;
      case CompKind::kReduceOr:
        r = v[op.in0] != 0 ? 1 : 0;
        break;
      case CompKind::kReduceXor:
        r = static_cast<std::uint64_t>(std::popcount(v[op.in0]) & 1);
        break;
      case CompKind::kSlice:
        r = (v[op.in0] >> op.a) & op.out_mask;
        break;
      case CompKind::kConcat:
        r = ((v[op.in0] << op.a) | v[op.in1]) & op.out_mask;
        break;
      case CompKind::kShl:
        r = (v[op.in0] << op.a) & op.out_mask;
        break;
      case CompKind::kShr:
        r = v[op.in0] >> op.a;
        break;
      default:
        break;
    }
    std::uint64_t& out = values_[static_cast<std::size_t>(op.out_off)];
    if (out == r) return false;
    out = r;
    return true;
  }
  // General path: evaluate into scratch, commit only on change.
  const Component& c = design_.components()[static_cast<std::size_t>(op.comp)];
  eval_comp(c, scratch_.data());
  std::uint64_t* dst = values_.data() + op.out_off;
  if (std::equal(scratch_.data(), scratch_.data() + op.out_words, dst)) {
    return false;
  }
  std::copy(scratch_.data(), scratch_.data() + op.out_words, dst);
  return true;
}

void Simulator::eval_comp(const Component& c, std::uint64_t* dst) {
  const WireSlot& out = slots_[static_cast<std::size_t>(c.out.id)];
  auto src = [&](std::size_t k) -> const std::uint64_t* {
    return wire_ptr(c.in[k].id);
  };
  switch (c.kind) {
    case CompKind::kNot: {
      const std::uint64_t* a = src(0);
      for (int w = 0; w < out.words; ++w) dst[w] = ~a[w];
      mask_top_word(dst, out.width);
      break;
    }
    case CompKind::kAnd: {
      const std::uint64_t* a = src(0);
      const std::uint64_t* b = src(1);
      for (int w = 0; w < out.words; ++w) dst[w] = a[w] & b[w];
      break;
    }
    case CompKind::kOr: {
      const std::uint64_t* a = src(0);
      const std::uint64_t* b = src(1);
      for (int w = 0; w < out.words; ++w) dst[w] = a[w] | b[w];
      break;
    }
    case CompKind::kXor: {
      const std::uint64_t* a = src(0);
      const std::uint64_t* b = src(1);
      for (int w = 0; w < out.words; ++w) dst[w] = a[w] ^ b[w];
      break;
    }
    case CompKind::kMux: {
      const bool sel = (src(0)[0] & 1) != 0;
      const std::uint64_t* v = sel ? src(1) : src(2);
      std::copy(v, v + out.words, dst);
      break;
    }
    case CompKind::kMuxN: {
      const std::uint64_t selv = src(0)[0];
      const std::size_t n = c.in.size() - 1;
      const std::size_t idx = std::min<std::uint64_t>(selv, n - 1);
      const std::uint64_t* v = src(1 + idx);
      std::copy(v, v + out.words, dst);
      break;
    }
    case CompKind::kAdd: {
      const std::uint64_t* a = src(0);
      const std::uint64_t* b = src(1);
      unsigned __int128 carry = 0;
      for (int w = 0; w < out.words; ++w) {
        const unsigned __int128 s =
            static_cast<unsigned __int128>(a[w]) + b[w] + carry;
        dst[w] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
      }
      mask_top_word(dst, out.width);
      break;
    }
    case CompKind::kSub: {
      const std::uint64_t* a = src(0);
      const std::uint64_t* b = src(1);
      unsigned __int128 carry = 1;
      for (int w = 0; w < out.words; ++w) {
        const unsigned __int128 s =
            static_cast<unsigned __int128>(a[w]) + ~b[w] + carry;
        dst[w] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
      }
      mask_top_word(dst, out.width);
      break;
    }
    case CompKind::kEq: {
      const std::uint64_t* a = src(0);
      const std::uint64_t* b = src(1);
      const int n = slots_[static_cast<std::size_t>(c.in[0].id)].words;
      bool equal = true;
      for (int w = 0; w < n; ++w) {
        if (a[w] != b[w]) {
          equal = false;
          break;
        }
      }
      dst[0] = equal ? 1 : 0;
      break;
    }
    case CompKind::kUlt: {
      const std::uint64_t* a = src(0);
      const std::uint64_t* b = src(1);
      const int n = slots_[static_cast<std::size_t>(c.in[0].id)].words;
      bool lt = false;
      for (int w = n; w-- > 0;) {
        if (a[w] != b[w]) {
          lt = a[w] < b[w];
          break;
        }
      }
      dst[0] = lt ? 1 : 0;
      break;
    }
    case CompKind::kReduceAnd: {
      const Wire in0 = c.in[0];
      const std::uint64_t* a = src(0);
      bool all = true;
      for (int i = 0; i < in0.width && all; ++i) all = get_bit(a, i);
      dst[0] = all ? 1 : 0;
      break;
    }
    case CompKind::kReduceOr: {
      const std::uint64_t* a = src(0);
      const int n = slots_[static_cast<std::size_t>(c.in[0].id)].words;
      bool any = false;
      for (int w = 0; w < n && !any; ++w) any = a[w] != 0;
      dst[0] = any ? 1 : 0;
      break;
    }
    case CompKind::kReduceXor: {
      const std::uint64_t* a = src(0);
      const int n = slots_[static_cast<std::size_t>(c.in[0].id)].words;
      std::uint64_t acc = 0;
      for (int w = 0; w < n; ++w) acc ^= a[w];
      dst[0] = static_cast<std::uint64_t>(std::popcount(acc) & 1);
      break;
    }
    case CompKind::kSlice: {
      const std::uint64_t* a = src(0);
      if (c.a % 64 == 0 && out.width <= 64) {
        dst[0] = a[c.a / 64];
        mask_top_word(dst, out.width);
      } else if (c.a + out.width <= 64) {
        dst[0] = (a[0] >> c.a) & util::low_mask(out.width);
      } else {
        std::fill(dst, dst + out.words, 0);
        copy_bits(dst, 0, a, c.a, out.width);
      }
      break;
    }
    case CompKind::kConcat: {
      std::fill(dst, dst + out.words, 0);
      // in[0] is the most significant part.
      int lo = 0;
      for (std::size_t k = c.in.size(); k-- > 0;) {
        copy_bits(dst, lo, src(k), 0, c.in[k].width);
        lo += c.in[k].width;
      }
      break;
    }
    case CompKind::kShl: {
      const std::uint64_t* a = src(0);
      std::fill(dst, dst + out.words, 0);
      if (c.a < out.width) copy_bits(dst, c.a, a, 0, out.width - c.a);
      break;
    }
    case CompKind::kShr: {
      const std::uint64_t* a = src(0);
      std::fill(dst, dst + out.words, 0);
      if (c.a < out.width) copy_bits(dst, 0, a, c.a, out.width - c.a);
      break;
    }
    default:
      break;  // sequential / port kinds are not evaluated here
  }
}

void Simulator::step(ClockId clock) {
  ATLANTIS_CHECK(clock.id >= 0 && clock.id < design_.clock_count(),
                 "unknown clock domain");
  eval_comb();
  if (mode_ == EvalMode::kThreaded) {
    threaded_->commit_edge(clock);
  } else {
    commit_edge(clock);
  }
  if (mode_ == EvalMode::kFullSweep) comb_dirty_ = true;
  eval_comb();
  ++cycle_count_[static_cast<std::size_t>(clock.id)];
  ++activity_.edges;
  if (edge_hook_) edge_hook_(*this, clock);
}

void Simulator::run(int n) {
  for (int i = 0; i < n; ++i) step();
}

void Simulator::commit_edge(ClockId clock) {
  const auto& comps = design_.components();
  // Phase 1: compute next values into stage_ (reads see pre-edge state).
  struct PendingWrite {
    std::int32_t ram;
    std::int64_t addr;
    std::int32_t src_wire;
  };
  static thread_local std::vector<PendingWrite> writes;
  writes.clear();
  static thread_local std::vector<std::int32_t> touched;
  touched.clear();

  for (const std::int32_t i : seq_comps_) {
    const Component& c = comps[static_cast<std::size_t>(i)];
    if (c.clock != clock.id) continue;
    switch (c.kind) {
      case CompKind::kReg: {
        const WireSlot& out = slots_[static_cast<std::size_t>(c.out.id)];
        std::uint64_t* st = stage_.data() + out.offset;
        const Wire en = c.in[1];
        const Wire rst = c.in[2];
        const bool reset_now = rst.valid() && (wire_ptr(rst.id)[0] & 1) != 0;
        const bool enabled =
            !en.valid() || (wire_ptr(en.id)[0] & 1) != 0;
        if (reset_now) {
          std::copy(c.init.words().begin(), c.init.words().end(), st);
        } else if (enabled) {
          const std::uint64_t* d = wire_ptr(c.in[0].id);
          std::copy(d, d + out.words, st);
        } else {
          const std::uint64_t* q = wire_ptr(c.out.id);
          std::copy(q, q + out.words, st);
        }
        touched.push_back(c.out.id);
        break;
      }
      case CompKind::kRamRead: {
        const WireSlot& out = slots_[static_cast<std::size_t>(c.out.id)];
        std::uint64_t* st = stage_.data() + out.offset;
        const bool enabled =
            c.in.size() < 2 || (wire_ptr(c.in[1].id)[0] & 1) != 0;
        if (enabled) {
          const RamBlock& blk =
              design_.rams()[static_cast<std::size_t>(c.ram)];
          const std::uint64_t addr =
              wire_ptr(c.in[0].id)[0] % static_cast<std::uint64_t>(blk.words);
          const std::uint64_t* mem =
              ram_data_[static_cast<std::size_t>(c.ram)].data() +
              addr * static_cast<std::uint64_t>(
                         ram_stride_[static_cast<std::size_t>(c.ram)]);
          std::copy(mem, mem + out.words, st);
        } else {
          const std::uint64_t* q = wire_ptr(c.out.id);
          std::copy(q, q + out.words, st);
        }
        touched.push_back(c.out.id);
        break;
      }
      case CompKind::kRamWrite: {
        const bool we = (wire_ptr(c.in[2].id)[0] & 1) != 0;
        if (we) {
          const RamBlock& blk =
              design_.rams()[static_cast<std::size_t>(c.ram)];
          const auto addr = static_cast<std::int64_t>(
              wire_ptr(c.in[0].id)[0] % static_cast<std::uint64_t>(blk.words));
          writes.push_back({c.ram, addr, c.in[1].id});
        }
        break;
      }
      default:
        break;
    }
  }
  // Phase 2: commit RAM writes (after all reads sampled old contents).
  for (const PendingWrite& w : writes) {
    const std::int32_t stride = ram_stride_[static_cast<std::size_t>(w.ram)];
    std::uint64_t* mem = ram_data_[static_cast<std::size_t>(w.ram)].data() +
                         static_cast<std::uint64_t>(w.addr) * stride;
    const std::uint64_t* d = wire_ptr(w.src_wire);
    std::copy(d, d + stride, mem);
  }
  // Phase 3: commit register / read-port outputs. Only wires whose
  // staged value differs from the pre-edge value dirty their fanout —
  // quiescent registers (disabled enables, held resets, stable D) cost
  // nothing downstream.
  for (const std::int32_t id : touched) {
    const WireSlot& s = slots_[static_cast<std::size_t>(id)];
    const std::uint64_t* st = stage_.data() + s.offset;
    std::uint64_t* dst = values_.data() + s.offset;
    if (std::equal(st, st + s.words, dst)) continue;
    std::copy(st, st + s.words, dst);
    mark_wire_dirty(id);
    lazy_stale_ = true;
  }
}

void Simulator::write_ram(int ram, std::int64_t addr, const BitVec& value) {
  ATLANTIS_CHECK(ram >= 0 && ram < static_cast<int>(ram_data_.size()),
                 "unknown RAM");
  const RamBlock& blk = design_.rams()[static_cast<std::size_t>(ram)];
  ATLANTIS_CHECK(addr >= 0 && addr < blk.words, "RAM address out of range");
  ATLANTIS_CHECK(value.width() == blk.width, "RAM data width mismatch");
  std::copy(value.words().begin(), value.words().end(),
            ram_data_[static_cast<std::size_t>(ram)].begin() +
                static_cast<std::ptrdiff_t>(addr) *
                    ram_stride_[static_cast<std::size_t>(ram)]);
  // The change is visible through the RAM's synchronous read ports on
  // their next edge; arm them so the event-driven edge tape re-reads.
  if (mode_ == EvalMode::kThreaded) threaded_->note_ram_written(ram);
}

BitVec Simulator::read_ram(int ram, std::int64_t addr) const {
  ATLANTIS_CHECK(ram >= 0 && ram < static_cast<int>(ram_data_.size()),
                 "unknown RAM");
  const RamBlock& blk = design_.rams()[static_cast<std::size_t>(ram)];
  ATLANTIS_CHECK(addr >= 0 && addr < blk.words, "RAM address out of range");
  BitVec v(blk.width);
  const auto* mem = ram_data_[static_cast<std::size_t>(ram)].data() +
                    static_cast<std::ptrdiff_t>(addr) *
                        ram_stride_[static_cast<std::size_t>(ram)];
  std::copy(mem, mem + ram_stride_[static_cast<std::size_t>(ram)],
            v.words().begin());
  return v;
}

}  // namespace atlantis::chdl
