// State-machine definition API.
//
// CHDL's second design-entry style (besides structural netlists) is the
// state machine. States and guarded transitions are declared in C++, and
// build() compiles them to a one-hot register bank plus next-state logic.
// Transitions declared earlier take priority when several guards are true
// in the same cycle; a state with no true outgoing guard holds.
#pragma once

#include <string>
#include <vector>

#include "chdl/design.hpp"

namespace atlantis::chdl {

/// Handle to a declared state.
struct StateId {
  std::int32_t id = -1;
  bool valid() const { return id >= 0; }
};

class Fsm {
 public:
  /// States and transitions are declared first; build() creates hardware.
  Fsm(Design& design, std::string name, ClockId clock = {});

  /// Declares a state; the first declared state is the reset state unless
  /// set_initial overrides it.
  StateId state(const std::string& name);

  /// Declares a guarded transition. `guard` must be a 1-bit wire.
  void transition(StateId from, StateId to, Wire guard);

  /// Declares an unconditional transition (taken unless an earlier guard
  /// from the same state fires).
  void always(StateId from, StateId to);

  void set_initial(StateId s);

  /// Compiles to hardware. After build():
  ///  - active(s) is a 1-bit wire, high while the FSM is in s,
  ///  - encoded() is the binary state number.
  void build();

  Wire active(StateId s) const;
  Wire encoded() const;
  int state_count() const { return static_cast<int>(states_.size()); }
  const std::string& state_name(StateId s) const {
    return states_.at(static_cast<std::size_t>(s.id));
  }

 private:
  struct Transition {
    StateId from;
    StateId to;
    Wire guard;  // invalid => unconditional
  };

  Design& design_;
  std::string name_;
  ClockId clock_;
  std::vector<std::string> states_;
  std::vector<Transition> transitions_;
  StateId initial_{0};
  std::vector<Wire> active_;  // one-hot register outputs, set by build()
  Wire encoded_{};
  bool built_ = false;
};

}  // namespace atlantis::chdl
