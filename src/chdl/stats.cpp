#include "chdl/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace atlantis::chdl {

NetlistStats analyze(const Design& design) {
  NetlistStats s;
  s.design_name = design.name();
  s.wires = design.wire_count();
  for (const Component& c : design.components()) {
    ++s.components;
    const int w = c.out.valid() ? c.out.width : 0;
    switch (c.kind) {
      case CompKind::kNot:
      case CompKind::kAnd:
      case CompKind::kOr:
        s.gate_equivalents += w;
        break;
      case CompKind::kXor:
        s.gate_equivalents += 3LL * w;
        break;
      case CompKind::kMux:
        s.gate_equivalents += 3LL * w;
        break;
      case CompKind::kMuxN:
        s.gate_equivalents +=
            3LL * w * static_cast<std::int64_t>(c.in.size() - 1);
        break;
      case CompKind::kAdd:
      case CompKind::kSub:
        s.gate_equivalents += 6LL * w;
        break;
      case CompKind::kEq:
        s.gate_equivalents += 3LL * c.in[0].width + (c.in[0].width - 1);
        break;
      case CompKind::kUlt:
        s.gate_equivalents += 6LL * c.in[0].width;
        break;
      case CompKind::kReduceAnd:
      case CompKind::kReduceOr:
        s.gate_equivalents += c.in[0].width - 1;
        break;
      case CompKind::kReduceXor:
        s.gate_equivalents += 3LL * (c.in[0].width - 1);
        break;
      case CompKind::kReg:
        s.gate_equivalents += 8LL * w;
        s.flipflops += w;
        break;
      case CompKind::kRamRead:
      case CompKind::kRamWrite:
        s.gate_equivalents += c.in[0].width;  // address steering
        break;
      case CompKind::kInput:
        s.io_pins += w;
        break;
      case CompKind::kOutput:
        s.io_pins += c.in[0].width;
        break;
      default:
        break;  // const / wiring-only kinds
    }
  }
  for (const RamBlock& r : design.rams()) {
    s.ram_bits += r.words * static_cast<std::int64_t>(r.width);
  }
  s.lut4_estimate = (s.gate_equivalents - 8 * s.flipflops) / 4;

  // Levelization / fanout summary: what the event-driven simulator's
  // dirty worklist is shaped by. Level of a comb component = 1 + max
  // level of its comb producers; consumers per wire feed mean_fanout.
  std::vector<std::int64_t> level_of_wire(
      static_cast<std::size_t>(design.wire_count()), 0);
  std::vector<std::int64_t> consumers(
      static_cast<std::size_t>(design.wire_count()), 0);
  std::int64_t driven_wires = 0;
  std::int64_t fanout_edges = 0;
  for (const Component& c : design.components()) {
    switch (c.kind) {
      case CompKind::kReg:
      case CompKind::kRamRead:
      case CompKind::kRamWrite:
      case CompKind::kInput:
      case CompKind::kConst:
      case CompKind::kOutput:
        break;
      default: {
        ++s.comb_components;
        std::int64_t lvl = 1;
        for (const Wire w : c.in) {
          if (!w.valid()) continue;
          lvl = std::max(lvl,
                         level_of_wire[static_cast<std::size_t>(w.id)] + 1);
          ++consumers[static_cast<std::size_t>(w.id)];
          ++fanout_edges;
        }
        if (c.out.valid()) {
          level_of_wire[static_cast<std::size_t>(c.out.id)] = lvl;
        }
        s.comb_levels = std::max(s.comb_levels, lvl);
        break;
      }
    }
  }
  for (const std::int64_t n : consumers) {
    if (n > 0) ++driven_wires;
  }
  s.mean_fanout = driven_wires > 0
                      ? static_cast<double>(fanout_edges) /
                            static_cast<double>(driven_wires)
                      : 0.0;
  return s;
}

std::string NetlistStats::to_string() const {
  std::ostringstream os;
  os << "design '" << design_name << "': " << components << " components, "
     << gate_equivalents << " gate-eq, " << flipflops << " FF, ~"
     << lut4_estimate << " LUT4, " << ram_bits << " RAM bits, " << io_pins
     << " I/O pins, " << wires << " wires, " << comb_levels
     << " comb levels";
  return os.str();
}

}  // namespace atlantis::chdl
