#include "chdl/vcd.hpp"

#include "util/status.hpp"

namespace atlantis::chdl {

std::string VcdWriter::id_code(std::size_t index) {
  // Printable identifier alphabet per the VCD spec ('!' .. '~').
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

VcdWriter::VcdWriter(Simulator& sim, const std::string& path, int period_ns)
    : sim_(sim), period_ns_(period_ns) {
  file_ = std::fopen(path.c_str(), "w");
  ATLANTIS_CHECK(file_ != nullptr, "cannot open VCD file: " + path);

  const Design& d = sim.design();
  auto add_track = [&](const std::string& name, Wire w) {
    Track t;
    t.wire = w;
    t.code = id_code(tracks_.size());
    t.last = BitVec(w.width);
    std::string clean = name;
    for (char& c : clean) {
      if (c == '/' || c == ' ') c = '.';
    }
    std::fprintf(file_, "$var wire %d %s %s $end\n", w.width, t.code.c_str(),
                 clean.c_str());
    tracks_.push_back(std::move(t));
  };

  std::fprintf(file_, "$timescale 1ns $end\n$scope module %s $end\n",
               d.name().c_str());
  for (const auto& [name, w] : d.inputs()) add_track(name, w);
  for (const auto& [name, w] : d.outputs()) add_track(name, w);
  for (const Component& c : d.components()) {
    if (c.kind == CompKind::kReg && !c.name.empty()) add_track(c.name, c.out);
  }
  std::fprintf(file_, "$upscope $end\n$enddefinitions $end\n");

  sim_.set_edge_hook([this](Simulator& s, ClockId) { sample(s); });
  // Initial values at time zero.
  std::fprintf(file_, "#0\n");
  for (Track& t : tracks_) {
    t.last = sim_.peek(t.wire);
    std::fprintf(file_, "b%s %s\n", t.last.to_binary().c_str(),
                 t.code.c_str());
  }
}

void VcdWriter::sample(Simulator& sim) {
  ++edges_;
  bool header_done = false;
  for (Track& t : tracks_) {
    BitVec v = sim.peek(t.wire);
    if (v == t.last) continue;
    if (!header_done) {
      std::fprintf(file_, "#%llu\n",
                   static_cast<unsigned long long>(edges_ * period_ns_));
      header_done = true;
    }
    std::fprintf(file_, "b%s %s\n", v.to_binary().c_str(), t.code.c_str());
    t.last = std::move(v);
  }
}

void VcdWriter::close() {
  if (file_ != nullptr) {
    sim_.set_edge_hook({});
    std::fclose(file_);
    file_ = nullptr;
  }
}

VcdWriter::~VcdWriter() { close(); }

}  // namespace atlantis::chdl
