// Region compiler for the threaded execution backend (chdl/threaded.hpp).
//
// The levelized op tape evaluates one opcode per dispatch; the threaded
// backend instead executes whole *regions* — single-entry cones of
// combinational logic between register / RAM / port boundaries — as
// straight-line superop blocks. This header holds the region
// partitioning itself, kept free of Simulator internals so the
// invariants are unit-testable on plain graphs.
//
// Partitioning rule (deterministic, derived from the tape fanout table):
// walking the tape in topological order, an op joins its producer's
// region exactly when that producer is the region's current tail and the
// producer's output has no other tape consumer; otherwise it opens a new
// region. Regions are therefore maximal single-consumer chains (capped
// at `max_region_ops`), which gives two structural guarantees:
//
//   * single entry / single exit: only the tail op's output is ever
//     consumed by another region, so a region can be executed start to
//     finish with no interior change checks, and inter-region dirtiness
//     can be tracked by diffing region outputs only;
//   * the region DAG is acyclic and region levels (longest inter-region
//     path) strictly increase along every edge, so a level-bucketed
//     dirty worklist drains in one pass, exactly like the per-op tape.
//
// Intermediate (non-tail) wires may still feed sequential elements or be
// observed by peeks/VCD; wires with sequential consumers are listed as
// region outputs too so the edge scheduler sees their changes.
#pragma once

#include <cstdint>
#include <vector>

namespace atlantis::chdl {

/// Combinational dependency graph the partitioner consumes: one node per
/// tape op (already in topological order), edges expressed as input wire
/// ids per op plus each op's output wire.
struct RegionGraph {
  std::int32_t wire_count = 0;
  std::vector<std::int32_t> in_begin;   // CSR: op -> slice of in_wires
  std::vector<std::int32_t> in_wires;   // input wire ids, per op
  std::vector<std::int32_t> out_wire;   // output wire id, per op
  // Per wire: consumed by a sequential element (register D/enable/reset,
  // RAM address/data/write-enable). Such wires must be diffed at region
  // boundaries even when no other region consumes them.
  std::vector<std::uint8_t> wire_seq_consumed;

  std::int32_t op_count() const {
    return static_cast<std::int32_t>(out_wire.size());
  }
};

struct RegionBuildOptions {
  /// Upper bound on ops per region. Longer chains amortize dispatch
  /// better but re-execute more ops when an input in the middle of the
  /// chain wiggles; 64 keeps the worst-case inflation bounded.
  int max_region_ops = 64;
};

/// One compiled region: a slice of `RegionPlan::op_order` executed
/// straight-line, plus the slice of `RegionPlan::out_wires` diffed after
/// execution.
struct Region {
  std::int32_t ops_begin = 0, ops_end = 0;    // into plan.op_order
  std::int32_t outs_begin = 0, outs_end = 0;  // into plan.out_wires
  std::int32_t level = 0;                     // region DAG level
};

struct RegionPlan {
  std::vector<Region> regions;
  std::vector<std::int32_t> op_order;    // op ids grouped per region
  std::vector<std::int32_t> out_wires;   // diffed wires, grouped per region
  std::vector<std::int32_t> op_region;   // op id -> owning region
  // Wire -> consuming regions CSR (deduplicated, ascending). Drives the
  // region-granular dirty worklist: pokes and sequential commits mark
  // exactly the regions that read a changed wire.
  std::vector<std::int32_t> fan_begin;
  std::vector<std::int32_t> fan_regions;
  std::int32_t max_level = 0;

  std::int32_t region_count() const {
    return static_cast<std::int32_t>(regions.size());
  }
};

/// Partitions the graph. Pure function of its inputs: identical graphs
/// and options produce identical plans (asserted by the determinism test
/// in tests/chdl/test_threaded.cpp).
RegionPlan build_region_plan(const RegionGraph& graph,
                             const RegionBuildOptions& opts = {});

}  // namespace atlantis::chdl
