// High-level structural generators.
//
// The paper's pitch for CHDL is that "complex high level software ...
// generates the structural design automatically". These helpers are that
// layer: counters, ROM builders, adder trees and the PLX-style host
// register file that every ATLANTIS design instantiates to talk to the
// CPU module.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chdl/design.hpp"

namespace atlantis::chdl {

/// Free-running or gated up-counter; wraps at 2^width.
/// `enable`/`clear` are optional 1-bit wires.
Wire counter(Design& d, const std::string& name, int width, Wire enable = {},
             Wire clear = {}, ClockId clock = {});

/// ROM from 64-bit words (width <= 64).
int rom_from_u64(Design& d, const std::string& name,
                 const std::vector<std::uint64_t>& words, int width,
                 ClockId clock = {});

/// Balanced adder tree; operands are zero-extended so that no carry is
/// ever lost. Returns a wire of width max(input widths) + ceil(log2(n)).
Wire adder_tree(Design& d, std::vector<Wire> terms);

/// Population count of a vector (tree of adders over the bits).
Wire popcount(Design& d, Wire value);

/// a == constant.
Wire eq_const(Design& d, Wire a, std::uint64_t value);

/// Unsigned array multiplier: partial products (a AND-masked by each bit
/// of b, shifted) summed by a balanced adder tree — the structure a
/// LUT-based FPGA multiplier of the era actually had. Result width is
/// a.width + b.width.
Wire multiply(Design& d, Wire a, Wire b);

/// Replicates a single bit across `width` lanes (for AND-masking).
Wire replicate(Design& d, Wire bit, int width);

/// The memory-mapped host interface every ATLANTIS design exposes through
/// the PLX 9080 local bus: an address/data/write-enable port plus a
/// combinational read-back multiplexer. Mirrors the microEnable register
/// protocol, which is what keeps the basic software "immediately
/// available" on ATLANTIS (§2).
class HostRegFile {
 public:
  /// Creates ports host_addr / host_wdata / host_we / host_rdata.
  explicit HostRegFile(Design& d, int addr_bits = 8, int data_bits = 32,
                       ClockId clock = {});

  /// Host-writable register, readable by the design fabric. Also read
  /// back by the host at the same address.
  Wire write_reg(const std::string& name, std::uint32_t addr, int width);

  /// One-cycle strobe, high during a host write to `addr` (command ports,
  /// FIFO pushes).
  Wire write_strobe(std::uint32_t addr);

  /// Exposes a fabric value to host reads at `addr`.
  void map_read(std::uint32_t addr, Wire value);

  /// Builds the read-back mux and the host_rdata output. Must be called
  /// exactly once, after all registers are declared.
  void finish();

  Wire addr() const { return addr_; }
  Wire wdata() const { return wdata_; }
  Wire we() const { return we_; }
  int data_bits() const { return data_bits_; }

 private:
  Design& d_;
  int addr_bits_;
  int data_bits_;
  ClockId clock_;
  Wire addr_{};
  Wire wdata_{};
  Wire we_{};
  std::map<std::uint32_t, Wire> read_map_;
  bool finished_ = false;
};

}  // namespace atlantis::chdl
