#include "chdl/fsm.hpp"

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::chdl {

Fsm::Fsm(Design& design, std::string name, ClockId clock)
    : design_(design), name_(std::move(name)), clock_(clock) {}

StateId Fsm::state(const std::string& name) {
  ATLANTIS_CHECK(!built_, "FSM already built");
  states_.push_back(name);
  return StateId{static_cast<std::int32_t>(states_.size() - 1)};
}

void Fsm::transition(StateId from, StateId to, Wire guard) {
  ATLANTIS_CHECK(!built_, "FSM already built");
  ATLANTIS_CHECK(from.valid() && to.valid(), "invalid state handle");
  ATLANTIS_CHECK(guard.valid() && guard.width == 1,
                 "transition guard must be a 1-bit wire");
  transitions_.push_back({from, to, guard});
}

void Fsm::always(StateId from, StateId to) {
  ATLANTIS_CHECK(!built_, "FSM already built");
  transitions_.push_back({from, to, Wire{}});
}

void Fsm::set_initial(StateId s) {
  ATLANTIS_CHECK(!built_, "FSM already built");
  initial_ = s;
}

void Fsm::build() {
  ATLANTIS_CHECK(!built_, "FSM already built");
  ATLANTIS_CHECK(!states_.empty(), "FSM has no states");
  const auto n = static_cast<std::int32_t>(states_.size());
  Design::Scope scope(design_, name_);

  // One-hot state registers, forward-declared for the feedback path.
  active_.resize(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    RegOpts opts;
    opts.clock = clock_;
    opts.init = BitVec(1, i == initial_.id ? 1 : 0);
    active_[static_cast<std::size_t>(i)] =
        design_.reg_forward("state_" + states_[static_cast<std::size_t>(i)], 1,
                            opts);
  }

  // Effective (prioritized) guard per transition: guard & ~(earlier guard
  // from the same state). `taken[from]` accumulates earlier guards.
  std::vector<Wire> taken(static_cast<std::size_t>(n));
  std::vector<Wire> next(static_cast<std::size_t>(n));
  const Wire one = design_.constant(1, 1);
  for (const Transition& t : transitions_) {
    const auto f = static_cast<std::size_t>(t.from.id);
    Wire g = t.guard.valid() ? t.guard : one;
    if (taken[f].valid()) {
      g = design_.band(g, design_.bnot(taken[f]));
      taken[f] = design_.bor(taken[f], g);
    } else {
      taken[f] = g;
    }
    // Contribution to the destination: active(from) & effective guard.
    const Wire contrib = design_.band(active_[f], g);
    const auto to = static_cast<std::size_t>(t.to.id);
    next[to] = next[to].valid() ? design_.bor(next[to], contrib) : contrib;
  }
  // Hold term: stay in a state when no outgoing guard fires.
  for (std::int32_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    Wire hold = active_[s];
    if (taken[s].valid()) hold = design_.band(hold, design_.bnot(taken[s]));
    next[s] = next[s].valid() ? design_.bor(next[s], hold) : hold;
    design_.reg_connect(active_[s], next[s]);
  }

  // Binary encoding for observation / waveforms.
  const int enc_width = util::bit_width_of(static_cast<std::uint64_t>(n - 1));
  Wire enc = design_.constant(enc_width, 0);
  for (std::int32_t i = 1; i < n; ++i) {
    const Wire idx = design_.constant(enc_width, static_cast<std::uint64_t>(i));
    enc = design_.mux(active_[static_cast<std::size_t>(i)], idx, enc);
  }
  encoded_ = enc;
  built_ = true;
}

Wire Fsm::active(StateId s) const {
  ATLANTIS_CHECK(built_, "FSM not built yet");
  ATLANTIS_CHECK(s.valid() && s.id < static_cast<std::int32_t>(states_.size()),
                 "invalid state handle");
  return active_[static_cast<std::size_t>(s.id)];
}

Wire Fsm::encoded() const {
  ATLANTIS_CHECK(built_, "FSM not built yet");
  return encoded_;
}

}  // namespace atlantis::chdl
