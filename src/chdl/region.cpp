#include "chdl/region.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atlantis::chdl {

RegionPlan build_region_plan(const RegionGraph& graph,
                             const RegionBuildOptions& opts) {
  const std::int32_t n_ops = graph.op_count();
  const std::size_t n_wires = static_cast<std::size_t>(graph.wire_count);
  ATLANTIS_CHECK(opts.max_region_ops >= 1, "max_region_ops must be >= 1");
  ATLANTIS_CHECK(graph.in_begin.size() == static_cast<std::size_t>(n_ops) + 1,
                 "RegionGraph CSR size mismatch");

  // Producer op and distinct-consumer summary per wire. sole_consumer is
  // the consuming op when there is exactly one, -1 for none, -2 for many.
  std::vector<std::int32_t> producer(n_wires, -1);
  std::vector<std::int32_t> sole_consumer(n_wires, -1);
  for (std::int32_t t = 0; t < n_ops; ++t) {
    producer[static_cast<std::size_t>(graph.out_wire[
        static_cast<std::size_t>(t)])] = t;
    for (std::int32_t i = graph.in_begin[static_cast<std::size_t>(t)];
         i < graph.in_begin[static_cast<std::size_t>(t) + 1]; ++i) {
      auto& c = sole_consumer[static_cast<std::size_t>(
          graph.in_wires[static_cast<std::size_t>(i)])];
      if (c == -1) {
        c = t;
      } else if (c != t) {
        c = -2;
      }
    }
  }

  RegionPlan plan;
  plan.op_region.assign(static_cast<std::size_t>(n_ops), -1);
  // Per region (during construction): member ops, current tail, level.
  std::vector<std::vector<std::int32_t>> members;
  std::vector<std::int32_t> tail;
  std::vector<std::int32_t> level;

  for (std::int32_t t = 0; t < n_ops; ++t) {
    // Chain rule: join the producer's region if that producer is still
    // the region tail and this op is its only tape consumer.
    std::int32_t target = -1;
    for (std::int32_t i = graph.in_begin[static_cast<std::size_t>(t)];
         target < 0 && i < graph.in_begin[static_cast<std::size_t>(t) + 1];
         ++i) {
      const std::int32_t w = graph.in_wires[static_cast<std::size_t>(i)];
      const std::int32_t p = producer[static_cast<std::size_t>(w)];
      if (p < 0) continue;
      if (sole_consumer[static_cast<std::size_t>(w)] != t) continue;
      const std::int32_t r = plan.op_region[static_cast<std::size_t>(p)];
      if (tail[static_cast<std::size_t>(r)] != p) continue;
      if (static_cast<int>(members[static_cast<std::size_t>(r)].size()) >=
          opts.max_region_ops) {
        continue;
      }
      target = r;
    }
    if (target < 0) {
      target = static_cast<std::int32_t>(members.size());
      members.emplace_back();
      tail.push_back(-1);
      level.push_back(0);
    }
    members[static_cast<std::size_t>(target)].push_back(t);
    tail[static_cast<std::size_t>(target)] = t;
    plan.op_region[static_cast<std::size_t>(t)] = target;
    // Region level: one past every producing region. Producing regions
    // are closed by construction (their tail's output already has an
    // external consumer), so their levels are final here.
    for (std::int32_t i = graph.in_begin[static_cast<std::size_t>(t)];
         i < graph.in_begin[static_cast<std::size_t>(t) + 1]; ++i) {
      const std::int32_t p = producer[static_cast<std::size_t>(
          graph.in_wires[static_cast<std::size_t>(i)])];
      if (p < 0) continue;
      const std::int32_t pr = plan.op_region[static_cast<std::size_t>(p)];
      if (pr == target) continue;
      level[static_cast<std::size_t>(target)] =
          std::max(level[static_cast<std::size_t>(target)],
                   level[static_cast<std::size_t>(pr)] + 1);
    }
  }

  // Assemble regions: op order per region and the diffed output set
  // (wires leaving the region for another region or a sequential
  // element).
  plan.regions.resize(members.size());
  plan.op_order.reserve(static_cast<std::size_t>(n_ops));
  for (std::size_t r = 0; r < members.size(); ++r) {
    Region& region = plan.regions[r];
    region.level = level[r];
    plan.max_level = std::max(plan.max_level, region.level);
    region.ops_begin = static_cast<std::int32_t>(plan.op_order.size());
    for (const std::int32_t t : members[r]) plan.op_order.push_back(t);
    region.ops_end = static_cast<std::int32_t>(plan.op_order.size());
    region.outs_begin = static_cast<std::int32_t>(plan.out_wires.size());
    for (const std::int32_t t : members[r]) {
      const std::int32_t w = graph.out_wire[static_cast<std::size_t>(t)];
      const std::int32_t c = sole_consumer[static_cast<std::size_t>(w)];
      const bool external_tape_consumer =
          c == -2 ||
          (c >= 0 &&
           plan.op_region[static_cast<std::size_t>(c)] !=
               static_cast<std::int32_t>(r));
      if (external_tape_consumer ||
          graph.wire_seq_consumed[static_cast<std::size_t>(w)] != 0) {
        plan.out_wires.push_back(w);
      }
    }
    region.outs_end = static_cast<std::int32_t>(plan.out_wires.size());
  }

  // Wire -> consuming regions CSR, deduplicated per wire. The producing
  // region is excluded (its interior consumers already saw the value
  // while the block executed), which also guarantees every mark issued
  // while the level queue drains targets a strictly higher level. Graph
  // inputs (ports, register outputs) list every reading region.
  std::vector<std::vector<std::int32_t>> per_wire(n_wires);
  for (std::int32_t t = 0; t < n_ops; ++t) {
    const std::int32_t r = plan.op_region[static_cast<std::size_t>(t)];
    for (std::int32_t i = graph.in_begin[static_cast<std::size_t>(t)];
         i < graph.in_begin[static_cast<std::size_t>(t) + 1]; ++i) {
      const std::int32_t w = graph.in_wires[static_cast<std::size_t>(i)];
      const std::int32_t p = producer[static_cast<std::size_t>(w)];
      if (p >= 0 && plan.op_region[static_cast<std::size_t>(p)] == r) {
        continue;  // intra-region edge
      }
      per_wire[static_cast<std::size_t>(w)].push_back(r);
    }
  }
  plan.fan_begin.assign(n_wires + 1, 0);
  std::vector<std::int32_t> counts(n_wires, 0);
  for (std::size_t w = 0; w < n_wires; ++w) {
    auto& v = per_wire[w];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    counts[w] = static_cast<std::int32_t>(v.size());
  }
  for (std::size_t w = 0; w < n_wires; ++w) {
    plan.fan_begin[w + 1] = plan.fan_begin[w] + counts[w];
  }
  plan.fan_regions.reserve(static_cast<std::size_t>(plan.fan_begin.back()));
  for (std::size_t w = 0; w < n_wires; ++w) {
    for (const std::int32_t r : per_wire[w]) plan.fan_regions.push_back(r);
  }
  return plan;
}

}  // namespace atlantis::chdl
