// VCD waveform writer: attaches to a Simulator and records the design's
// ports and named registers after every clock edge.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "chdl/sim.hpp"

namespace atlantis::chdl {

class VcdWriter {
 public:
  /// Opens `path` and installs itself as the simulator's edge hook.
  /// `period_ns` scales cycle numbers to VCD time.
  VcdWriter(Simulator& sim, const std::string& path, int period_ns = 25);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Flushes and detaches; further edges are not recorded.
  void close();

 private:
  struct Track {
    Wire wire;
    std::string code;  // VCD identifier
    BitVec last;
  };

  void sample(Simulator& sim);
  static std::string id_code(std::size_t index);

  Simulator& sim_;
  std::FILE* file_ = nullptr;
  std::vector<Track> tracks_;
  int period_ns_;
  std::uint64_t edges_ = 0;
};

}  // namespace atlantis::chdl
