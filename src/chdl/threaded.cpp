#include "chdl/threaded.hpp"

#include <algorithm>
#include <bit>

#include "chdl/sim.hpp"
#include "util/status.hpp"

// Dispatch selection. GCC and Clang support taking the address of a
// label (&&label) and jumping through it, which turns per-op dispatch
// into a single indirect branch at the end of each handler;
// ATLANTIS_THREADED_FORCE_SWITCH pins the portable switch loop so CI
// can prove both paths are bit-identical on the same compiler.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(ATLANTIS_THREADED_FORCE_SWITCH)
#define ATLANTIS_THREADED_COMPUTED_GOTO 1
#else
#define ATLANTIS_THREADED_COMPUTED_GOTO 0
#endif

namespace atlantis::chdl {

bool threaded_uses_computed_goto() {
  return ATLANTIS_THREADED_COMPUTED_GOTO != 0;
}

// Single-word handler bodies, written once and expanded into both the
// computed-goto handlers and the switch cases so the two dispatch paths
// cannot drift. Every body is the exact expression Simulator::eval_op
// computes for the corresponding opcode; order must match TCode (the
// label table is static_assert'd against TCode::kCount_).
#define ATLANTIS_THREADED_OPS(X)                                         \
  X(kNot, ~v[op->in0] & op->mask)                                        \
  X(kAnd, v[op->in0] & v[op->in1])                                       \
  X(kOr, v[op->in0] | v[op->in1])                                        \
  X(kXor, v[op->in0] ^ v[op->in1])                                       \
  X(kMux, (v[op->in0] & 1) != 0 ? v[op->in1] : v[op->in2])               \
  X(kAdd, (v[op->in0] + v[op->in1]) & op->mask)                          \
  X(kSub, (v[op->in0] - v[op->in1]) & op->mask)                          \
  X(kEq, v[op->in0] == v[op->in1] ? 1 : 0)                               \
  X(kUlt, v[op->in0] < v[op->in1] ? 1 : 0)                               \
  X(kReduceAnd, v[op->in0] == op->imm ? 1 : 0)                           \
  X(kReduceOr, v[op->in0] != 0 ? 1 : 0)                                  \
  X(kReduceXor, static_cast<std::uint64_t>(std::popcount(v[op->in0]) & 1)) \
  X(kSlice, (v[op->in0] >> op->a) & op->mask)                            \
  X(kConcat2, ((v[op->in0] << op->a) | v[op->in1]) & op->mask)           \
  X(kShl, (v[op->in0] << op->a) & op->mask)                              \
  X(kShr, v[op->in0] >> op->a)                                           \
  X(kAndNot, v[op->in0] & ~v[op->in1] & op->mask)                        \
  X(kOrNot, (v[op->in0] | ~v[op->in1]) & op->mask)                       \
  X(kEqImm, v[op->in0] == op->imm ? 1 : 0)                               \
  X(kNeImm, v[op->in0] != op->imm ? 1 : 0)                               \
  X(kUltImm, v[op->in0] < op->imm ? 1 : 0)                               \
  X(kImmUlt, op->imm < v[op->in0] ? 1 : 0)                               \
  X(kAddImm, (v[op->in0] + op->imm) & op->mask)                          \
  X(kSubImm, (v[op->in0] - op->imm) & op->mask)                          \
  X(kAndImm, v[op->in0] & op->imm)                                       \
  X(kOrImm, v[op->in0] | op->imm)                                        \
  X(kXorImm, v[op->in0] ^ op->imm)                                       \
  X(kSliceImm, (v[op->in0] >> op->imm) & op->mask)

ThreadedBackend::ThreadedBackend(Simulator& sim,
                                 const RegionBuildOptions& opts)
    : sim_(sim), plan_(build_region_plan(sim.region_graph(), opts)) {
  decode_tape();
  build_seq_tape();
  shadow_.assign(sim_.values_.size(), 0);
  buckets_.assign(static_cast<std::size_t>(plan_.max_level) + 1, {});
  region_queued_.assign(plan_.regions.size(), 0);
  mark_all();
}

void ThreadedBackend::decode_tape() {
  code_begin_.reserve(plan_.regions.size());
  code_.reserve(plan_.op_order.size() + plan_.regions.size());
  for (const Region& region : plan_.regions) {
    code_begin_.push_back(static_cast<std::int32_t>(code_.size()));
    for (std::int32_t i = region.ops_begin; i < region.ops_end; ++i) {
      const std::int32_t t = plan_.op_order[static_cast<std::size_t>(i)];
      const Simulator::Op& src = sim_.tape_[static_cast<std::size_t>(t)];
      TOp d;
      d.out = src.out_off;
      d.mask = src.out_mask;
      d.in0 = src.in0;
      d.in1 = src.in1;
      d.in2 = src.in2;
      d.a = src.a;
      d.imm = src.imm;
      if (src.fused != FusedOp::kNone) {
        switch (src.fused) {
          case FusedOp::kAndNot:   d.code = TCode::kAndNot; break;
          case FusedOp::kOrNot:    d.code = TCode::kOrNot; break;
          case FusedOp::kEqImm:    d.code = TCode::kEqImm; break;
          case FusedOp::kNeImm:    d.code = TCode::kNeImm; break;
          case FusedOp::kUltImm:   d.code = TCode::kUltImm; break;
          case FusedOp::kImmUlt:   d.code = TCode::kImmUlt; break;
          case FusedOp::kAddImm:   d.code = TCode::kAddImm; break;
          case FusedOp::kSubImm:   d.code = TCode::kSubImm; break;
          case FusedOp::kAndImm:   d.code = TCode::kAndImm; break;
          case FusedOp::kOrImm:    d.code = TCode::kOrImm; break;
          case FusedOp::kXorImm:   d.code = TCode::kXorImm; break;
          case FusedOp::kSliceImm: d.code = TCode::kSliceImm; break;
          case FusedOp::kNone:     break;
        }
      } else if (src.single) {
        switch (src.kind) {
          case CompKind::kNot:       d.code = TCode::kNot; break;
          case CompKind::kAnd:       d.code = TCode::kAnd; break;
          case CompKind::kOr:        d.code = TCode::kOr; break;
          case CompKind::kXor:       d.code = TCode::kXor; break;
          case CompKind::kMux:       d.code = TCode::kMux; break;
          case CompKind::kAdd:       d.code = TCode::kAdd; break;
          case CompKind::kSub:       d.code = TCode::kSub; break;
          case CompKind::kEq:        d.code = TCode::kEq; break;
          case CompKind::kUlt:       d.code = TCode::kUlt; break;
          case CompKind::kReduceAnd:
            d.code = TCode::kReduceAnd;
            d.imm = src.in_mask;  // compare-against mask rides in imm
            break;
          case CompKind::kReduceOr:  d.code = TCode::kReduceOr; break;
          case CompKind::kReduceXor: d.code = TCode::kReduceXor; break;
          case CompKind::kSlice:     d.code = TCode::kSlice; break;
          case CompKind::kConcat:    d.code = TCode::kConcat2; break;
          case CompKind::kShl:       d.code = TCode::kShl; break;
          case CompKind::kShr:       d.code = TCode::kShr; break;
          default:
            ATLANTIS_CHECK(false, "unexpected single-word tape op kind");
            break;
        }
      } else {
        d.code = TCode::kWide;
        d.comp = src.comp;
      }
      code_.push_back(d);
    }
    code_.push_back(TOp{});  // TCode::kEnd terminator
  }
}

void ThreadedBackend::build_seq_tape() {
  const auto& comps = sim_.design_.components();
  const auto rep = [&](Wire w) { return sim_.opt_ ? sim_.opt_->rep(w) : w; };
  const auto off = [&](Wire w) {
    return sim_.slots_[static_cast<std::size_t>(w.id)].offset;
  };
  seq_dirty_.assign(static_cast<std::size_t>(sim_.design_.clock_count()), {});
  ram_readers_.assign(sim_.design_.rams().size(), {});
  // (wire, consuming SeqOp) edges for the fanout CSR below.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (const std::int32_t i : sim_.seq_comps_) {
    const Component& c = comps[static_cast<std::size_t>(i)];
    const std::int32_t si = static_cast<std::int32_t>(seq_ops_.size());
    SeqOp s;
    s.comp = i;
    s.clock = c.clock;
    const auto watch = [&](Wire w) {
      if (w.valid()) edges.emplace_back(rep(w).id, si);
    };
    switch (c.kind) {
      case CompKind::kReg: {
        const auto& slot = sim_.slots_[static_cast<std::size_t>(c.out.id)];
        s.out_wire = rep(c.out).id;
        s.out_off = slot.offset;
        s.out_words = slot.words;
        s.kind = slot.words == 1 ? SeqOp::kReg1 : SeqOp::kRegN;
        s.d_off = off(c.in[0]);
        if (c.in[1].valid()) s.en_off = off(c.in[1]);
        if (c.in[2].valid()) s.rst_off = off(c.in[2]);
        s.init = c.init.words().data();
        watch(c.in[0]);
        watch(c.in[1]);
        watch(c.in[2]);
        break;
      }
      case CompKind::kRamRead: {
        const auto& slot = sim_.slots_[static_cast<std::size_t>(c.out.id)];
        s.kind = SeqOp::kRamRead;
        s.ram = c.ram;
        s.out_wire = rep(c.out).id;
        s.out_off = slot.offset;
        s.out_words = slot.words;  // == the RAM's word stride
        s.addr_off = off(c.in[0]);
        if (c.in.size() >= 2 && c.in[1].valid()) s.en_off = off(c.in[1]);
        ram_readers_[static_cast<std::size_t>(c.ram)].push_back(si);
        watch(c.in[0]);
        if (c.in.size() >= 2) watch(c.in[1]);
        break;
      }
      case CompKind::kRamWrite: {
        s.kind = SeqOp::kRamWrite;
        s.ram = c.ram;
        s.out_words = sim_.ram_stride_[static_cast<std::size_t>(c.ram)];
        s.addr_off = off(c.in[0]);
        s.d_off = off(c.in[1]);
        s.en_off = off(c.in[2]);
        watch(c.in[0]);
        watch(c.in[1]);
        watch(c.in[2]);
        break;
      }
      default:
        continue;
    }
    seq_ops_.push_back(s);
  }
  seq_queued_.assign(seq_ops_.size(), 0);

  const std::size_t n_wires = sim_.slots_.size();
  std::vector<std::int32_t> counts(n_wires, 0);
  for (const auto& [w, si] : edges) ++counts[static_cast<std::size_t>(w)];
  seq_fan_begin_.assign(n_wires + 1, 0);
  for (std::size_t w = 0; w < n_wires; ++w) {
    seq_fan_begin_[w + 1] = seq_fan_begin_[w] + counts[w];
  }
  seq_fan_ops_.assign(static_cast<std::size_t>(seq_fan_begin_.back()), 0);
  std::vector<std::int32_t> cursor(seq_fan_begin_.begin(),
                                   seq_fan_begin_.end() - 1);
  for (const auto& [w, si] : edges) {
    seq_fan_ops_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(w)]++)] = si;
  }
}

void ThreadedBackend::mark_region(std::int32_t r) {
  if (region_queued_[static_cast<std::size_t>(r)]) return;
  region_queued_[static_cast<std::size_t>(r)] = 1;
  buckets_[static_cast<std::size_t>(
      plan_.regions[static_cast<std::size_t>(r)].level)].push_back(r);
  ++dirty_regions_;
}

void ThreadedBackend::mark_seq(std::int32_t s) {
  if (seq_queued_[static_cast<std::size_t>(s)]) return;
  seq_queued_[static_cast<std::size_t>(s)] = 1;
  seq_dirty_[static_cast<std::size_t>(
      seq_ops_[static_cast<std::size_t>(s)].clock)].push_back(s);
}

void ThreadedBackend::mark_wire(std::int32_t wire_id) {
  const std::size_t w = static_cast<std::size_t>(wire_id);
  for (std::int32_t i = plan_.fan_begin[w]; i < plan_.fan_begin[w + 1]; ++i) {
    mark_region(plan_.fan_regions[static_cast<std::size_t>(i)]);
  }
  for (std::int32_t i = seq_fan_begin_[w]; i < seq_fan_begin_[w + 1]; ++i) {
    mark_seq(seq_fan_ops_[static_cast<std::size_t>(i)]);
  }
}

void ThreadedBackend::mark_all() {
  for (auto& b : buckets_) b.clear();
  std::fill(region_queued_.begin(), region_queued_.end(), 1);
  for (std::int32_t r = 0; r < plan_.region_count(); ++r) {
    buckets_[static_cast<std::size_t>(
        plan_.regions[static_cast<std::size_t>(r)].level)].push_back(r);
  }
  dirty_regions_ = plan_.region_count();
  for (auto& l : seq_dirty_) l.clear();
  std::fill(seq_queued_.begin(), seq_queued_.end(), 1);
  for (std::size_t s = 0; s < seq_ops_.size(); ++s) {
    seq_dirty_[static_cast<std::size_t>(seq_ops_[s].clock)].push_back(
        static_cast<std::int32_t>(s));
  }
}

void ThreadedBackend::note_ram_written(std::int32_t ram) {
  for (const std::int32_t rd : ram_readers_[static_cast<std::size_t>(ram)]) {
    mark_seq(rd);
  }
}

void ThreadedBackend::eval() {
  if (dirty_regions_ == 0) return;
  for (auto& q : buckets_) {
    // Output diffing only marks strictly higher-level regions (the plan
    // excludes intra-region edges from the fanout CSR), so the bucket
    // being drained never grows.
    for (std::size_t i = 0; i < q.size(); ++i) {
      const std::int32_t r = q[i];
      region_queued_[static_cast<std::size_t>(r)] = 0;
      execute_region(r);
    }
    q.clear();
  }
  dirty_regions_ = 0;
}

void ThreadedBackend::execute_region(std::int32_t r) {
  const Region& region = plan_.regions[static_cast<std::size_t>(r)];
  const TOp* op = code_.data() + code_begin_[static_cast<std::size_t>(r)];
  std::uint64_t* const v = sim_.values_.data();
  const auto& comps = sim_.design_.components();

#if ATLANTIS_THREADED_COMPUTED_GOTO
#define ATLANTIS_LABEL_ENTRY(name, body) &&L_##name,
  static const void* const kDispatch[] = {
      &&L_End,
      &&L_Wide,
      ATLANTIS_THREADED_OPS(ATLANTIS_LABEL_ENTRY)
  };
#undef ATLANTIS_LABEL_ENTRY
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                    static_cast<std::size_t>(TCode::kCount_),
                "dispatch table must cover every TCode");
#define ATLANTIS_DISPATCH() goto* kDispatch[static_cast<std::size_t>(op->code)]
  ATLANTIS_DISPATCH();
#define ATLANTIS_GOTO_HANDLER(name, body) \
  L_##name : v[op->out] = (body);         \
  ++op;                                   \
  ATLANTIS_DISPATCH();
  ATLANTIS_THREADED_OPS(ATLANTIS_GOTO_HANDLER)
#undef ATLANTIS_GOTO_HANDLER
L_Wide:
  sim_.eval_comp(comps[static_cast<std::size_t>(op->comp)], v + op->out);
  ++op;
  ATLANTIS_DISPATCH();
L_End:;
#undef ATLANTIS_DISPATCH
#else
  // Portable fallback: same handler bodies behind a switch loop.
  for (bool running = true; running;) {
    switch (op->code) {
#define ATLANTIS_SWITCH_HANDLER(name, body) \
  case TCode::name:                         \
    v[op->out] = (body);                    \
    ++op;                                   \
    break;
      ATLANTIS_THREADED_OPS(ATLANTIS_SWITCH_HANDLER)
#undef ATLANTIS_SWITCH_HANDLER
      case TCode::kWide:
        sim_.eval_comp(comps[static_cast<std::size_t>(op->comp)], v + op->out);
        ++op;
        break;
      case TCode::kEnd:
      default:
        running = false;
        break;
    }
  }
#endif

  sim_.activity_.comp_evals +=
      static_cast<std::uint64_t>(region.ops_end - region.ops_begin);
  // Single change check per region: diff the outputs against the value
  // each consumer last saw, propagate only real changes.
  std::uint64_t* const sh = shadow_.data();
  for (std::int32_t i = region.outs_begin; i < region.outs_end; ++i) {
    const std::int32_t w = plan_.out_wires[static_cast<std::size_t>(i)];
    const auto& slot = sim_.slots_[static_cast<std::size_t>(w)];
    std::uint64_t* cur = v + slot.offset;
    std::uint64_t* old = sh + slot.offset;
    if (std::equal(cur, cur + slot.words, old)) continue;
    std::copy(cur, cur + slot.words, old);
    ++sim_.activity_.comp_changes;
    mark_wire(w);
  }
}

void ThreadedBackend::commit_edge(ClockId clock) {
  auto& list = seq_dirty_[static_cast<std::size_t>(clock.id)];
  if (list.empty()) return;
  commit_order_.assign(list.begin(), list.end());
  list.clear();
  for (const std::int32_t s : commit_order_) {
    seq_queued_[static_cast<std::size_t>(s)] = 0;
  }
  // Commit in component-creation order so multi-port RAM writes keep the
  // reference engine's last-write-wins ordering.
  std::sort(commit_order_.begin(), commit_order_.end());
  pending_writes_.clear();
  touched_.clear();

  std::uint64_t* const v = sim_.values_.data();
  std::uint64_t* const st = sim_.stage_.data();
  const auto& rams = sim_.design_.rams();
  // Phase 1: stage next register / read-port values from pre-edge state;
  // collect asserted write ports.
  for (const std::int32_t si : commit_order_) {
    const SeqOp& s = seq_ops_[static_cast<std::size_t>(si)];
    switch (s.kind) {
      case SeqOp::kReg1: {
        std::uint64_t next;
        if (s.rst_off >= 0 && (v[s.rst_off] & 1) != 0) {
          next = s.init[0];
        } else if (s.en_off < 0 || (v[s.en_off] & 1) != 0) {
          next = v[s.d_off];
        } else {
          next = v[s.out_off];
        }
        st[s.out_off] = next;
        touched_.push_back(si);
        break;
      }
      case SeqOp::kRegN: {
        const std::uint64_t* from;
        if (s.rst_off >= 0 && (v[s.rst_off] & 1) != 0) {
          from = s.init;
        } else if (s.en_off < 0 || (v[s.en_off] & 1) != 0) {
          from = v + s.d_off;
        } else {
          from = v + s.out_off;
        }
        std::copy(from, from + s.out_words, st + s.out_off);
        touched_.push_back(si);
        break;
      }
      case SeqOp::kRamRead: {
        if (s.en_off < 0 || (v[s.en_off] & 1) != 0) {
          const RamBlock& blk = rams[static_cast<std::size_t>(s.ram)];
          const std::uint64_t addr =
              v[s.addr_off] % static_cast<std::uint64_t>(blk.words);
          const std::uint64_t* mem =
              sim_.ram_data_[static_cast<std::size_t>(s.ram)].data() +
              addr * static_cast<std::uint64_t>(s.out_words);
          std::copy(mem, mem + s.out_words, st + s.out_off);
        } else {
          std::copy(v + s.out_off, v + s.out_off + s.out_words,
                    st + s.out_off);
        }
        touched_.push_back(si);
        break;
      }
      case SeqOp::kRamWrite: {
        if ((v[s.en_off] & 1) != 0) {
          const RamBlock& blk = rams[static_cast<std::size_t>(s.ram)];
          const auto addr = static_cast<std::int64_t>(
              v[s.addr_off] % static_cast<std::uint64_t>(blk.words));
          pending_writes_.push_back({s.ram, addr, s.d_off, s.out_words});
          // Sticky: an asserted port writes again next edge even if its
          // inputs hold (another port may overwrite the word meanwhile).
          mark_seq(si);
        }
        break;
      }
    }
  }
  // Phase 2: commit RAM writes after all reads sampled old contents. A
  // word that actually changed re-arms the RAM's read ports (the change
  // becomes visible through them on their next edge).
  for (const PendingWrite& w : pending_writes_) {
    std::uint64_t* mem =
        sim_.ram_data_[static_cast<std::size_t>(w.ram)].data() +
        static_cast<std::uint64_t>(w.addr) *
            static_cast<std::uint64_t>(w.words);
    const std::uint64_t* d = v + w.src_off;
    if (std::equal(d, d + w.words, mem)) continue;
    std::copy(d, d + w.words, mem);
    note_ram_written(w.ram);
  }
  // Phase 3: commit outputs whose staged value differs, marking their
  // combinational and sequential fanout.
  for (const std::int32_t si : touched_) {
    const SeqOp& s = seq_ops_[static_cast<std::size_t>(si)];
    const std::uint64_t* staged = st + s.out_off;
    std::uint64_t* dst = v + s.out_off;
    if (std::equal(staged, staged + s.out_words, dst)) continue;
    std::copy(staged, staged + s.out_words, dst);
    sim_.lazy_stale_ = true;
    mark_wire(s.out_wire);
  }
}

}  // namespace atlantis::chdl
