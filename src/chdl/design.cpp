#include "chdl/design.hpp"

#include <utility>

#include "util/bitops.hpp"

namespace atlantis::chdl {

ClockId Design::add_clock(const std::string& name) {
  clock_names_.push_back(name);
  return ClockId{static_cast<std::int32_t>(clock_names_.size() - 1)};
}

Wire Design::new_wire(int width) {
  ATLANTIS_CHECK(width > 0, "wire width must be positive");
  wire_widths_.push_back(width);
  return Wire{next_wire_++, width};
}

void Design::check_wire(Wire w) const {
  ATLANTIS_CHECK(w.valid() && w.id < next_wire_, "wire does not belong here");
  ATLANTIS_CHECK(wire_widths_[static_cast<std::size_t>(w.id)] == w.width,
                 "wire width mismatch (stale handle?)");
}

std::string Design::scoped_name(const std::string& base) const {
  std::string out;
  for (const auto& s : scope_) {
    out += s;
    out += '/';
  }
  out += base;
  return out;
}

Wire Design::add_comp(CompKind kind, std::vector<Wire> in, int out_width,
                      std::int32_t a) {
  for (const Wire w : in) check_wire(w);
  Component c;
  c.kind = kind;
  c.in = std::move(in);
  c.a = a;
  if (out_width > 0) c.out = new_wire(out_width);
  comps_.push_back(std::move(c));
  return comps_.back().out;
}

Wire Design::input(const std::string& name, int width) {
  ATLANTIS_CHECK(!has_port(name), "duplicate port name: " + name);
  Component c;
  c.kind = CompKind::kInput;
  c.out = new_wire(width);
  c.name = name;
  comps_.push_back(std::move(c));
  inputs_.emplace_back(name, comps_.back().out);
  return comps_.back().out;
}

void Design::output(const std::string& name, Wire value) {
  check_wire(value);
  ATLANTIS_CHECK(!has_port(name), "duplicate port name: " + name);
  Component c;
  c.kind = CompKind::kOutput;
  c.in = {value};
  c.name = name;
  comps_.push_back(std::move(c));
  outputs_.emplace_back(name, value);
}

Wire Design::port(const std::string& name) const {
  for (const auto& [n, w] : inputs_)
    if (n == name) return w;
  for (const auto& [n, w] : outputs_)
    if (n == name) return w;
  throw util::Error("no port named '" + name + "' in design " + name_);
}

bool Design::has_port(const std::string& name) const {
  for (const auto& [n, w] : inputs_)
    if (n == name) return true;
  for (const auto& [n, w] : outputs_)
    if (n == name) return true;
  return false;
}

Wire Design::constant(const BitVec& value) {
  ATLANTIS_CHECK(!value.empty(), "constant must have a width");
  // Constants are interned by (width, value): builders call
  // constant()/resize() per site, and without the pool every call would
  // materialize another identical component.
  const auto key = std::make_pair(value.width(), value.words());
  const auto it = const_pool_.find(key);
  if (it != const_pool_.end()) return Wire{it->second, value.width()};
  Component c;
  c.kind = CompKind::kConst;
  c.out = new_wire(value.width());
  c.init = value;
  comps_.push_back(std::move(c));
  const_pool_.emplace(key, comps_.back().out.id);
  return comps_.back().out;
}

Wire Design::bnot(Wire a) { return add_comp(CompKind::kNot, {a}, a.width); }

Wire Design::band(Wire a, Wire b) {
  ATLANTIS_CHECK(a.width == b.width, "operand width mismatch");
  return add_comp(CompKind::kAnd, {a, b}, a.width);
}

Wire Design::bor(Wire a, Wire b) {
  ATLANTIS_CHECK(a.width == b.width, "operand width mismatch");
  return add_comp(CompKind::kOr, {a, b}, a.width);
}

Wire Design::bxor(Wire a, Wire b) {
  ATLANTIS_CHECK(a.width == b.width, "operand width mismatch");
  return add_comp(CompKind::kXor, {a, b}, a.width);
}

Wire Design::mux(Wire sel, Wire if1, Wire if0) {
  ATLANTIS_CHECK(sel.width == 1, "mux select must be one bit");
  ATLANTIS_CHECK(if1.width == if0.width, "mux arm width mismatch");
  return add_comp(CompKind::kMux, {sel, if1, if0}, if1.width);
}

Wire Design::muxn(Wire sel, const std::vector<Wire>& choices) {
  ATLANTIS_CHECK(!choices.empty(), "muxn needs at least one choice");
  const int w = choices.front().width;
  for (const Wire c : choices)
    ATLANTIS_CHECK(c.width == w, "muxn arm width mismatch");
  std::vector<Wire> in;
  in.reserve(choices.size() + 1);
  in.push_back(sel);
  in.insert(in.end(), choices.begin(), choices.end());
  return add_comp(CompKind::kMuxN, std::move(in), w);
}

Wire Design::add(Wire a, Wire b) {
  ATLANTIS_CHECK(a.width == b.width, "operand width mismatch");
  return add_comp(CompKind::kAdd, {a, b}, a.width);
}

Wire Design::sub(Wire a, Wire b) {
  ATLANTIS_CHECK(a.width == b.width, "operand width mismatch");
  return add_comp(CompKind::kSub, {a, b}, a.width);
}

Wire Design::eq(Wire a, Wire b) {
  ATLANTIS_CHECK(a.width == b.width, "operand width mismatch");
  return add_comp(CompKind::kEq, {a, b}, 1);
}

Wire Design::ult(Wire a, Wire b) {
  ATLANTIS_CHECK(a.width == b.width, "operand width mismatch");
  return add_comp(CompKind::kUlt, {a, b}, 1);
}

Wire Design::reduce_and(Wire a) {
  return add_comp(CompKind::kReduceAnd, {a}, 1);
}
Wire Design::reduce_or(Wire a) { return add_comp(CompKind::kReduceOr, {a}, 1); }
Wire Design::reduce_xor(Wire a) {
  return add_comp(CompKind::kReduceXor, {a}, 1);
}

Wire Design::slice(Wire a, int lo, int width) {
  ATLANTIS_CHECK(lo >= 0 && width > 0 && lo + width <= a.width,
                 "slice out of range");
  return add_comp(CompKind::kSlice, {a}, width, lo);
}

Wire Design::concat(const std::vector<Wire>& parts) {
  ATLANTIS_CHECK(!parts.empty(), "concat needs at least one part");
  int total = 0;
  for (const Wire p : parts) total += p.width;
  return add_comp(CompKind::kConcat, parts, total);
}

Wire Design::shl(Wire a, int amount) {
  ATLANTIS_CHECK(amount >= 0, "negative shift");
  return add_comp(CompKind::kShl, {a}, a.width, amount);
}

Wire Design::shr(Wire a, int amount) {
  ATLANTIS_CHECK(amount >= 0, "negative shift");
  return add_comp(CompKind::kShr, {a}, a.width, amount);
}

Wire Design::resize(Wire a, int width) {
  if (width == a.width) return a;
  if (width < a.width) return slice(a, 0, width);
  return concat({constant(width - a.width, 0), a});
}

Wire Design::reg(const std::string& name, Wire d, const RegOpts& opts) {
  check_wire(d);
  ATLANTIS_CHECK(opts.clock.id >= 0 && opts.clock.id < clock_count(),
                 "unknown clock domain");
  std::vector<Wire> in = {d};
  if (opts.enable.valid()) {
    ATLANTIS_CHECK(opts.enable.width == 1, "enable must be one bit");
    in.push_back(opts.enable);
  } else {
    in.push_back(Wire{});
  }
  if (opts.reset.valid()) {
    ATLANTIS_CHECK(opts.reset.width == 1, "reset must be one bit");
    in.push_back(opts.reset);
  } else {
    in.push_back(Wire{});
  }
  Component c;
  c.kind = CompKind::kReg;
  c.in = std::move(in);
  c.out = new_wire(d.width);
  c.clock = opts.clock.id;
  c.init = opts.init.empty() ? BitVec(d.width) : opts.init;
  ATLANTIS_CHECK(c.init.width() == d.width, "register init width mismatch");
  c.name = scoped_name(name);
  comps_.push_back(std::move(c));
  return comps_.back().out;
}

Wire Design::reg_forward(const std::string& name, int width,
                         const RegOpts& opts) {
  ATLANTIS_CHECK(width > 0, "register width must be positive");
  ATLANTIS_CHECK(opts.clock.id >= 0 && opts.clock.id < clock_count(),
                 "unknown clock domain");
  Component c;
  c.kind = CompKind::kReg;
  c.in = {Wire{}, opts.enable, opts.reset};
  if (opts.enable.valid()) {
    ATLANTIS_CHECK(opts.enable.width == 1, "enable must be one bit");
  }
  if (opts.reset.valid()) {
    ATLANTIS_CHECK(opts.reset.width == 1, "reset must be one bit");
  }
  c.out = new_wire(width);
  c.clock = opts.clock.id;
  c.init = opts.init.empty() ? BitVec(width) : opts.init;
  ATLANTIS_CHECK(c.init.width() == width, "register init width mismatch");
  c.name = scoped_name(name);
  comps_.push_back(std::move(c));
  return comps_.back().out;
}

void Design::reg_connect(Wire q, Wire d) {
  check_wire(q);
  check_wire(d);
  for (auto& c : comps_) {
    if (c.kind == CompKind::kReg && c.out.id == q.id) {
      ATLANTIS_CHECK(!c.in[0].valid(), "register D already connected");
      ATLANTIS_CHECK(d.width == q.width, "register D width mismatch");
      c.in[0] = d;
      return;
    }
  }
  throw util::Error("reg_connect: wire is not a register output");
}

void Design::check_complete() const {
  for (const auto& c : comps_) {
    if (c.kind == CompKind::kReg && !c.in[0].valid()) {
      throw util::Error("register '" + c.name + "' has unconnected D input");
    }
  }
}

int Design::add_ram(const std::string& name, std::int64_t words, int width,
                    ClockId clock) {
  ATLANTIS_CHECK(words > 0 && width > 0, "RAM shape must be positive");
  RamBlock r;
  r.name = scoped_name(name);
  r.words = words;
  r.width = width;
  r.clock = clock.id;
  rams_.push_back(std::move(r));
  return static_cast<int>(rams_.size() - 1);
}

int Design::add_rom(const std::string& name, std::vector<BitVec> contents,
                    ClockId clock) {
  ATLANTIS_CHECK(!contents.empty(), "ROM must have contents");
  const int width = contents.front().width();
  for (const auto& w : contents)
    ATLANTIS_CHECK(w.width() == width, "ROM word width mismatch");
  RamBlock r;
  r.name = scoped_name(name);
  r.words = static_cast<std::int64_t>(contents.size());
  r.width = width;
  r.clock = clock.id;
  r.writable = false;
  r.init = std::move(contents);
  rams_.push_back(std::move(r));
  return static_cast<int>(rams_.size() - 1);
}

Wire Design::ram_read(int ram, Wire addr, Wire enable) {
  ATLANTIS_CHECK(ram >= 0 && ram < static_cast<int>(rams_.size()),
                 "unknown RAM");
  const RamBlock& r = rams_[static_cast<std::size_t>(ram)];
  check_wire(addr);
  std::vector<Wire> in = {addr};
  if (enable.valid()) {
    ATLANTIS_CHECK(enable.width == 1, "read enable must be one bit");
    in.push_back(enable);
  }
  Component c;
  c.kind = CompKind::kRamRead;
  c.in = std::move(in);
  c.out = new_wire(r.width);
  c.ram = ram;
  c.clock = r.clock;
  c.name = r.name + "/rd";
  comps_.push_back(std::move(c));
  return comps_.back().out;
}

void Design::ram_write(int ram, Wire addr, Wire data, Wire we) {
  ATLANTIS_CHECK(ram >= 0 && ram < static_cast<int>(rams_.size()),
                 "unknown RAM");
  const RamBlock& r = rams_[static_cast<std::size_t>(ram)];
  ATLANTIS_CHECK(r.writable, "cannot write a ROM");
  ATLANTIS_CHECK(data.width == r.width, "RAM write data width mismatch");
  ATLANTIS_CHECK(we.width == 1, "write enable must be one bit");
  check_wire(addr);
  check_wire(data);
  check_wire(we);
  Component c;
  c.kind = CompKind::kRamWrite;
  c.in = {addr, data, we};
  c.ram = ram;
  c.clock = r.clock;
  c.name = r.name + "/wr";
  comps_.push_back(std::move(c));
}

void Design::push_scope(const std::string& name) { scope_.push_back(name); }

void Design::pop_scope() {
  ATLANTIS_CHECK(!scope_.empty(), "scope underflow");
  scope_.pop_back();
}

}  // namespace atlantis::chdl
