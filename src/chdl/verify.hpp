// Design verification utilities.
//
// CHDL's pitch is that verification happens by running the application
// against the simulated design. This header adds the complementary
// tool: randomized equivalence checking between two designs — e.g. a
// hand-optimized datapath against its naive reference, or a design
// before and after a netlist transformation. Both designs are driven
// with the same random input streams and their same-named outputs are
// compared cycle by cycle.
#pragma once

#include <cstdint>
#include <string>

#include "chdl/design.hpp"
#include "chdl/sim.hpp"

namespace atlantis::chdl {

struct EquivalenceReport {
  bool equivalent = true;
  std::uint64_t cycles_run = 0;
  std::string mismatch;  // human-readable first divergence

  explicit operator bool() const { return equivalent; }
};

struct EquivalenceOptions {
  int cycles = 1000;             // random stimulus cycles
  std::uint64_t seed = 0xC0FFEE;
  /// Skip this many initial cycles before comparing (lets pipelines of
  /// equal latency fill; designs must still agree cycle-by-cycle after).
  int warmup = 0;
  /// Evaluation policy per side. Passing the same design twice with
  /// different policies (e.g. optimizer on vs off) turns the checker
  /// into a randomized test for a netlist transformation.
  SimOptions sim_a{};
  SimOptions sim_b{};
};

/// Both designs must have identical input port names/widths and at least
/// one output name in common; common outputs are compared each cycle.
/// Throws util::Error on interface mismatch.
EquivalenceReport check_equivalence(const Design& a, const Design& b,
                                    const EquivalenceOptions& opts = {});

/// Human-readable name for a wire: its port name when it is a named
/// input/output, else the producing component's hierarchical instance
/// name, else "#<id>". Used by check_backends to report divergences by
/// name instead of raw wire index.
std::string wire_name(const Design& d, std::int32_t wire_id);

/// N-way backend cross-check over ONE design: every side simulates the
/// same netlist under its own SimOptions (different EvalMode and/or
/// optimizer setting) with identical random stimulus, and EVERY wire
/// plus every RAM word is compared each cycle — much stronger than the
/// output-only comparison of check_equivalence.
struct BackendCheckOptions {
  int cycles = 500;
  std::uint64_t seed = 0xA11CE;
  /// Simulators to pit against each other; side 0 is the reference.
  /// Empty selects the default three-way check: threaded+optimizer vs
  /// event-driven vs unoptimized full sweep.
  std::vector<SimOptions> sides;
};

struct BackendCheckReport {
  bool identical = true;
  std::uint64_t cycles_run = 0;
  std::string mismatch;  // first divergent wire, by name

  explicit operator bool() const { return identical; }
};

BackendCheckReport check_backends(const Design& d,
                                  const BackendCheckOptions& opts = {});

}  // namespace atlantis::chdl
