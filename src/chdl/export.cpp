#include "chdl/export.hpp"

#include <sstream>
#include <vector>

namespace atlantis::chdl {

const char* comp_kind_name(CompKind kind) {
  switch (kind) {
    case CompKind::kConst:
      return "const";
    case CompKind::kNot:
      return "not";
    case CompKind::kAnd:
      return "and";
    case CompKind::kOr:
      return "or";
    case CompKind::kXor:
      return "xor";
    case CompKind::kMux:
      return "mux";
    case CompKind::kMuxN:
      return "muxn";
    case CompKind::kAdd:
      return "add";
    case CompKind::kSub:
      return "sub";
    case CompKind::kEq:
      return "eq";
    case CompKind::kUlt:
      return "ult";
    case CompKind::kReduceAnd:
      return "rand";
    case CompKind::kReduceOr:
      return "ror";
    case CompKind::kReduceXor:
      return "rxor";
    case CompKind::kSlice:
      return "slice";
    case CompKind::kConcat:
      return "concat";
    case CompKind::kShl:
      return "shl";
    case CompKind::kShr:
      return "shr";
    case CompKind::kReg:
      return "reg";
    case CompKind::kRamRead:
      return "ram_read";
    case CompKind::kRamWrite:
      return "ram_write";
    case CompKind::kInput:
      return "input";
    case CompKind::kOutput:
      return "output";
  }
  return "?";
}

std::string export_netlist(const Design& d) {
  std::ostringstream os;
  os << "design " << d.name() << "\n";
  for (const RamBlock& r : d.rams()) {
    os << (r.writable ? "ram " : "rom ") << r.name << " : " << r.words << " x "
       << r.width << " @" << d.clock_name(ClockId{r.clock}) << "\n";
  }
  for (const Component& c : d.components()) {
    if (c.out.valid()) {
      os << "%" << c.out.id << " = ";
    }
    os << comp_kind_name(c.kind) << "(";
    bool first = true;
    for (const Wire w : c.in) {
      if (!first) os << ", ";
      first = false;
      if (w.valid()) {
        os << "%" << w.id;
      } else {
        os << "_";
      }
    }
    switch (c.kind) {
      case CompKind::kSlice:
        os << (first ? "" : ", ") << "lo=" << c.a;
        break;
      case CompKind::kShl:
      case CompKind::kShr:
        os << (first ? "" : ", ") << "n=" << c.a;
        break;
      case CompKind::kConst:
        os << "0b" << c.init.to_binary();
        break;
      case CompKind::kRamRead:
      case CompKind::kRamWrite:
        os << (first ? "" : ", ") << "ram=" << c.ram;
        break;
      default:
        break;
    }
    os << ")";
    if (c.out.valid()) os << " : " << c.out.width;
    if (!c.name.empty()) os << " \"" << c.name << "\"";
    if (c.kind == CompKind::kReg || c.kind == CompKind::kRamRead ||
        c.kind == CompKind::kRamWrite) {
      os << " @" << d.clock_name(ClockId{c.clock});
    }
    os << "\n";
  }
  return os.str();
}

std::string export_dot(const Design& d) {
  std::ostringstream os;
  os << "digraph \"" << d.name() << "\" {\n  rankdir=LR;\n";
  const auto& comps = d.components();
  // Producer component of each wire, for edge drawing.
  std::vector<std::int32_t> producer(static_cast<std::size_t>(d.wire_count()),
                                     -1);
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(comps.size()); ++i) {
    if (comps[static_cast<std::size_t>(i)].out.valid()) {
      producer[static_cast<std::size_t>(
          comps[static_cast<std::size_t>(i)].out.id)] = i;
    }
  }
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(comps.size()); ++i) {
    const Component& c = comps[static_cast<std::size_t>(i)];
    const char* shape = "ellipse";
    if (c.kind == CompKind::kReg || c.kind == CompKind::kRamRead ||
        c.kind == CompKind::kRamWrite) {
      shape = "box";
    } else if (c.kind == CompKind::kInput || c.kind == CompKind::kOutput) {
      shape = "diamond";
    }
    std::string label = comp_kind_name(c.kind);
    if (!c.name.empty()) label += "\\n" + c.name;
    os << "  n" << i << " [shape=" << shape << ", label=\"" << label
       << "\"];\n";
    for (const Wire w : c.in) {
      if (!w.valid()) continue;
      const std::int32_t p = producer[static_cast<std::size_t>(w.id)];
      if (p >= 0) {
        os << "  n" << p << " -> n" << i << " [label=\"" << w.width
           << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace atlantis::chdl
