#include "chdl/export.hpp"

#include <sstream>
#include <vector>

namespace atlantis::chdl {

const char* comp_kind_name(CompKind kind) {
  switch (kind) {
    case CompKind::kConst:
      return "const";
    case CompKind::kNot:
      return "not";
    case CompKind::kAnd:
      return "and";
    case CompKind::kOr:
      return "or";
    case CompKind::kXor:
      return "xor";
    case CompKind::kMux:
      return "mux";
    case CompKind::kMuxN:
      return "muxn";
    case CompKind::kAdd:
      return "add";
    case CompKind::kSub:
      return "sub";
    case CompKind::kEq:
      return "eq";
    case CompKind::kUlt:
      return "ult";
    case CompKind::kReduceAnd:
      return "rand";
    case CompKind::kReduceOr:
      return "ror";
    case CompKind::kReduceXor:
      return "rxor";
    case CompKind::kSlice:
      return "slice";
    case CompKind::kConcat:
      return "concat";
    case CompKind::kShl:
      return "shl";
    case CompKind::kShr:
      return "shr";
    case CompKind::kReg:
      return "reg";
    case CompKind::kRamRead:
      return "ram_read";
    case CompKind::kRamWrite:
      return "ram_write";
    case CompKind::kInput:
      return "input";
    case CompKind::kOutput:
      return "output";
  }
  return "?";
}

std::string export_netlist(const Design& d) {
  std::ostringstream os;
  os << "design " << d.name() << "\n";
  for (const RamBlock& r : d.rams()) {
    os << (r.writable ? "ram " : "rom ") << r.name << " : " << r.words << " x "
       << r.width << " @" << d.clock_name(ClockId{r.clock}) << "\n";
  }
  for (const Component& c : d.components()) {
    if (c.out.valid()) {
      os << "%" << c.out.id << " = ";
    }
    os << comp_kind_name(c.kind) << "(";
    bool first = true;
    for (const Wire w : c.in) {
      if (!first) os << ", ";
      first = false;
      if (w.valid()) {
        os << "%" << w.id;
      } else {
        os << "_";
      }
    }
    switch (c.kind) {
      case CompKind::kSlice:
        os << (first ? "" : ", ") << "lo=" << c.a;
        break;
      case CompKind::kShl:
      case CompKind::kShr:
        os << (first ? "" : ", ") << "n=" << c.a;
        break;
      case CompKind::kConst:
        os << "0b" << c.init.to_binary();
        break;
      case CompKind::kRamRead:
      case CompKind::kRamWrite:
        os << (first ? "" : ", ") << "ram=" << c.ram;
        break;
      default:
        break;
    }
    os << ")";
    if (c.out.valid()) os << " : " << c.out.width;
    if (!c.name.empty()) os << " \"" << c.name << "\"";
    if (c.kind == CompKind::kReg || c.kind == CompKind::kRamRead ||
        c.kind == CompKind::kRamWrite) {
      os << " @" << d.clock_name(ClockId{c.clock});
    }
    os << "\n";
  }
  return os.str();
}

const char* fused_op_name(FusedOp op) {
  switch (op) {
    case FusedOp::kNone:
      return "none";
    case FusedOp::kAndNot:
      return "andnot";
    case FusedOp::kOrNot:
      return "ornot";
    case FusedOp::kEqImm:
      return "eq_imm";
    case FusedOp::kNeImm:
      return "ne_imm";
    case FusedOp::kUltImm:
      return "ult_imm";
    case FusedOp::kImmUlt:
      return "imm_ult";
    case FusedOp::kAddImm:
      return "add_imm";
    case FusedOp::kSubImm:
      return "sub_imm";
    case FusedOp::kAndImm:
      return "and_imm";
    case FusedOp::kOrImm:
      return "or_imm";
    case FusedOp::kXorImm:
      return "xor_imm";
    case FusedOp::kSliceImm:
      return "slice_imm";
  }
  return "?";
}

namespace {

bool comb_kind(CompKind k) {
  switch (k) {
    case CompKind::kConst:
    case CompKind::kReg:
    case CompKind::kRamRead:
    case CompKind::kRamWrite:
    case CompKind::kInput:
    case CompKind::kOutput:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::string export_netlist(const Design& d, const OptimizedNetlist& opt) {
  std::ostringstream os;
  os << "design " << d.name() << " (optimized)\n";
  for (const RamBlock& r : d.rams()) {
    os << (r.writable ? "ram " : "rom ") << r.name << " : " << r.words << " x "
       << r.width << " @" << d.clock_name(ClockId{r.clock}) << "\n";
  }
  const auto& comps = d.components();
  for (std::size_t i = 0; i < comps.size(); ++i) {
    const Component& c = comps[i];
    if (c.out.valid()) {
      const auto id = static_cast<std::size_t>(c.out.id);
      if (opt.folded(c.out.id)) {
        os << "%" << c.out.id << " = const(0b"
           << opt.fold_value[id].to_binary() << ") : " << c.out.width
           << " ; folded " << comp_kind_name(c.kind) << "\n";
        continue;
      }
      if (opt.forward[id] != c.out.id) {
        os << "%" << c.out.id << " -> %" << opt.forward[id] << " ; alias "
           << comp_kind_name(c.kind) << "\n";
        continue;
      }
    }
    // DCE'd logic compiles onto no tape: omit it from the optimized view.
    if (comb_kind(c.kind) && !opt.comp_alive[i]) continue;

    const auto fused = opt.fused.find(static_cast<std::int32_t>(i));
    if (c.out.valid()) os << "%" << c.out.id << " = ";
    if (fused != opt.fused.end()) {
      const FusedComp& f = fused->second;
      os << fused_op_name(f.op) << "(%" << f.in0.id;
      if (f.in1.valid()) os << ", %" << f.in1.id;
      os << ", imm=0x" << std::hex << f.imm << std::dec << ")";
    } else {
      os << comp_kind_name(c.kind) << "(";
      bool first = true;
      for (const Wire w : c.in) {
        if (!first) os << ", ";
        first = false;
        if (w.valid()) {
          os << "%" << opt.rep(w).id;
        } else {
          os << "_";
        }
      }
      switch (c.kind) {
        case CompKind::kSlice:
          os << (first ? "" : ", ") << "lo=" << c.a;
          break;
        case CompKind::kShl:
        case CompKind::kShr:
          os << (first ? "" : ", ") << "n=" << c.a;
          break;
        case CompKind::kConst:
          os << "0b" << c.init.to_binary();
          break;
        case CompKind::kRamRead:
        case CompKind::kRamWrite:
          os << (first ? "" : ", ") << "ram=" << c.ram;
          break;
        default:
          break;
      }
      os << ")";
    }
    if (c.out.valid()) os << " : " << c.out.width;
    if (!c.name.empty()) os << " \"" << c.name << "\"";
    if (c.kind == CompKind::kReg || c.kind == CompKind::kRamRead ||
        c.kind == CompKind::kRamWrite) {
      os << " @" << d.clock_name(ClockId{c.clock});
    }
    os << "\n";
  }
  return os.str();
}

std::string export_dot(const Design& d) {
  std::ostringstream os;
  os << "digraph \"" << d.name() << "\" {\n  rankdir=LR;\n";
  const auto& comps = d.components();
  // Producer component of each wire, for edge drawing.
  std::vector<std::int32_t> producer(static_cast<std::size_t>(d.wire_count()),
                                     -1);
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(comps.size()); ++i) {
    if (comps[static_cast<std::size_t>(i)].out.valid()) {
      producer[static_cast<std::size_t>(
          comps[static_cast<std::size_t>(i)].out.id)] = i;
    }
  }
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(comps.size()); ++i) {
    const Component& c = comps[static_cast<std::size_t>(i)];
    const char* shape = "ellipse";
    if (c.kind == CompKind::kReg || c.kind == CompKind::kRamRead ||
        c.kind == CompKind::kRamWrite) {
      shape = "box";
    } else if (c.kind == CompKind::kInput || c.kind == CompKind::kOutput) {
      shape = "diamond";
    }
    std::string label = comp_kind_name(c.kind);
    if (!c.name.empty()) label += "\\n" + c.name;
    os << "  n" << i << " [shape=" << shape << ", label=\"" << label
       << "\"];\n";
    for (const Wire w : c.in) {
      if (!w.valid()) continue;
      const std::int32_t p = producer[static_cast<std::size_t>(w.id)];
      if (p >= 0) {
        os << "  n" << p << " -> n" << i << " [label=\"" << w.width
           << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace atlantis::chdl
