// Levelized cycle simulator for CHDL designs.
//
// The simulator keeps every wire's value in one flat word array (no
// allocation on the evaluation path) and latches registers and RAM ports
// on explicit clock edges. Synchronous-read RAMs return the pre-edge
// memory contents when an address is written on the same edge
// (read-before-write).
//
// Three evaluation policies are available:
//
//  * kEventDriven (default): during elaboration the combinational
//    netlist is levelized and compiled into a flat "op tape" of POD
//    records (opcode, input/output word offsets, width mask), and a
//    per-wire fanout table is built. Pokes and edge commits mark only
//    the fanout of wires whose value actually changed; evaluation
//    drains a level-bucketed dirty worklist, and a component's change
//    propagates onward only if its output changed. Quiescent logic
//    costs nothing.
//  * kThreaded: the op tape is re-compiled into region superops
//    executed by a computed-goto threaded dispatcher, and sequential
//    commits become event-driven too (see chdl/threaded.hpp). Fastest
//    backend; bit-identical to the other two by construction and by
//    the differential fuzzers.
//  * kFullSweep: the original policy — every combinational component is
//    re-evaluated in topological order whenever anything might have
//    changed. Kept as an independent cross-check implementation for
//    differential testing (see tests/chdl/test_fuzz.cpp).
//
// The application drives the design directly — poke inputs, clock, peek
// outputs — which is the CHDL workflow: the C++ program that will operate
// the real FPGA is also its test bench.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chdl/design.hpp"
#include "chdl/optimize.hpp"
#include "chdl/region.hpp"
#include "sim/snapshot.hpp"

namespace atlantis::chdl {

class ThreadedBackend;

/// Combinational evaluation policy.
enum class EvalMode {
  kEventDriven,  // dirty-worklist over the compiled op tape
  kThreaded,     // region superops + computed-goto dispatch
  kFullSweep,    // re-evaluate everything (reference cross-check path)
  kAuto,         // pick threaded vs event-driven by compiled tape size
};

/// Simulator construction options. The netlist optimizer
/// (chdl/optimize.hpp) is on by default; `optimize = false` is the
/// escape hatch that compiles the tape 1:1 from the elaborated design.
struct SimOptions {
  EvalMode mode = EvalMode::kEventDriven;
  bool optimize = true;
  OptimizeOptions opt{};
  /// Region partitioning knobs for EvalMode::kThreaded.
  RegionBuildOptions region{};
  /// EvalMode::kAuto threshold: tapes with at least this many compiled
  /// ops get the threaded region-superop engine; smaller tapes stay on
  /// the event-driven worklist, whose per-op dispatch is cheaper than a
  /// region plan that can barely amortize its shadow-diff checks
  /// (BENCH_simspeed: the 46-op conv tape runs ~6% faster event-driven,
  /// the 2860-op TRT tape ~10x faster threaded).
  std::size_t auto_threaded_min_ops = 256;
};

/// Work counters for speed reporting and activity-based tuning.
struct SimActivity {
  std::uint64_t comp_evals = 0;    // combinational evaluations performed
  std::uint64_t comp_changes = 0;  // evaluations whose output changed
  std::uint64_t edges = 0;         // clock edges applied
};

class Simulator {
 public:
  /// Elaborates the design: runs the netlist optimizer (unless
  /// disabled), levelizes combinational logic (throwing util::Error on
  /// a combinational cycle), compiles the op tape, allocates flat
  /// storage and applies power-up values.
  Simulator(const Design& design, const SimOptions& options);
  explicit Simulator(const Design& design,
                     EvalMode mode = EvalMode::kEventDriven)
      : Simulator(design, SimOptions{.mode = mode}) {}
  ~Simulator();

  const Design& design() const { return design_; }

  /// The resolved evaluation policy — never kAuto: auto resolves to
  /// kThreaded or kEventDriven against the compiled tape at
  /// construction (or inside set_eval_mode).
  EvalMode eval_mode() const { return mode_; }
  /// Switches the evaluation policy; all combinational state is
  /// re-evaluated on the next peek/step, so results are unaffected.
  /// kAuto re-resolves against the tape size.
  void set_eval_mode(EvalMode mode);

  const SimActivity& activity() const { return activity_; }
  void reset_activity() { activity_ = {}; }

  /// Drives an input port.
  void poke(Wire input, const BitVec& value);
  void poke(Wire input, std::uint64_t value) {
    poke(input, BitVec(input.width, value));
  }
  void poke(const std::string& port, std::uint64_t value);

  /// Reads any wire's current value (combinational logic is brought
  /// up to date first).
  BitVec peek(Wire w);
  std::uint64_t peek_u64(Wire w);
  std::uint64_t peek_u64(const std::string& port);

  /// Applies one positive clock edge on the given domain, then
  /// re-evaluates combinational logic.
  void step(ClockId clock = {});
  /// Applies `n` edges on domain 0.
  void run(int n);

  /// Edges applied so far per clock domain.
  std::uint64_t cycles(ClockId clock = {}) const {
    return cycle_count_.at(static_cast<std::size_t>(clock.id));
  }

  /// Direct RAM access for loading images / reading results without
  /// simulating a host bus (tests and loaders use this; the driver path
  /// goes through the design's host interface instead).
  void write_ram(int ram, std::int64_t addr, const BitVec& value);
  BitVec read_ram(int ram, std::int64_t addr) const;

  /// Observer called after every clock edge (used by the VCD writer).
  using EdgeHook = std::function<void(Simulator&, ClockId)>;
  void set_edge_hook(EdgeHook hook) { edge_hook_ = std::move(hook); }

  /// Re-applies power-up values (registers to init, RAM reads to zero;
  /// RAM contents are preserved, ROMs reloaded). Also clears the
  /// activity counters: a reset starts a fresh measurement epoch, so
  /// work done before it is never double-counted against work after.
  void reset();

  /// Snapshottable leaf (see sim/snapshot.hpp): writes the complete
  /// replayable state — every wire word, every RAM word, per-domain
  /// cycle counts and the activity counters — into the caller's open
  /// section. Worklist/backend state is *not* serialized: it is derived,
  /// and load_state re-derives it by marking everything dirty, which
  /// converges to the identical fixed point on all three eval backends
  /// (evaluation is a pure function of the restored values). load_state
  /// requires a simulator constructed over the same design and throws
  /// util::Error on a shape mismatch.
  void save_state(sim::SnapshotWriter& w) const;
  void load_state(sim::SnapshotReader& r);

  /// Levelization depth of the combinational netlist (longest
  /// comb path, in components).
  int comb_levels() const { return static_cast<int>(level_queue_.size()); }

  /// Number of ops compiled onto the event-driven tape (after the
  /// optimizer, when enabled).
  std::size_t tape_ops() const { return tape_.size(); }
  /// True when the netlist optimizer ran at construction.
  bool optimized() const { return opt_.has_value(); }
  /// Per-pass optimizer accounting; nullptr when the optimizer is off.
  const OptimizeReport* optimize_report() const {
    return opt_ ? &opt_->report : nullptr;
  }

  /// The combinational dependency graph of the compiled tape (inputs
  /// resolved through the optimizer), as consumed by the threaded
  /// backend's region compiler. Exposed so tests can check the region
  /// partitioning invariants against the real tape.
  RegionGraph region_graph() const;
  /// The threaded backend's region plan; nullptr until kThreaded has
  /// been selected at construction or via set_eval_mode.
  const RegionPlan* region_plan() const;

 private:
  struct WireSlot {
    std::int32_t offset = 0;  // index into values_
    std::int32_t words = 0;
    std::int32_t width = 0;
  };

  /// One compiled combinational component. `single` marks the ≤64-bit
  /// fast path: all inputs and the output are one word, so the hot loop
  /// is a switch over POD fields with no Component/Wire chasing.
  struct Op {
    CompKind kind = CompKind::kConst;
    FusedOp fused = FusedOp::kNone;  // != kNone: fused fast-path opcode
    bool single = false;
    std::int32_t comp = -1;      // index into design_.components()
    std::int32_t out_wire = -1;
    std::int32_t out_off = 0;
    std::int32_t out_words = 0;
    std::int32_t in0 = 0, in1 = 0, in2 = 0;  // input word offsets
    std::int32_t a = 0;          // slice lo / shift amount / concat lo width
    std::uint64_t out_mask = ~std::uint64_t{0};
    std::uint64_t in_mask = ~std::uint64_t{0};  // kReduceAnd input mask
    std::uint64_t imm = 0;                      // fused immediate / shift
    std::int32_t level = 0;
  };

  std::uint64_t* wire_ptr(std::int32_t id) {
    return values_.data() + slots_[static_cast<std::size_t>(id)].offset;
  }
  const std::uint64_t* wire_ptr(std::int32_t id) const {
    return values_.data() + slots_[static_cast<std::size_t>(id)].offset;
  }

  friend class ThreadedBackend;

  void eval_comb();
  void eval_comp(const Component& c, std::uint64_t* dst);
  bool eval_op(const Op& op);
  void refresh_lazy();
  void commit_edge(ClockId clock);
  void levelize();
  void compile_tape();
  void mark_wire_dirty(std::int32_t wire_id);
  void mark_all_dirty();
  void ensure_threaded();
  EvalMode resolve_auto() const;
  void store(Wire w, const BitVec& v);
  BitVec load(Wire w) const;

  const Design& design_;
  EvalMode mode_;
  std::optional<OptimizedNetlist> opt_;  // engaged iff optimizer enabled
  std::vector<WireSlot> slots_;
  std::vector<std::uint64_t> values_;
  std::vector<std::int32_t> comb_order_;   // component indices, topological
  std::vector<std::int32_t> seq_comps_;    // kReg / kRamRead / kRamWrite
  std::vector<std::vector<std::uint64_t>> ram_data_;  // flat words per RAM
  std::vector<std::int32_t> ram_stride_;   // words per RAM entry
  std::vector<std::uint64_t> cycle_count_;
  // Staging for next register / RAM-read values (avoids ordering hazards).
  std::vector<std::uint64_t> stage_;
  bool comb_dirty_ = true;                 // full-sweep mode only
  EdgeHook edge_hook_;

  // Event-driven machinery.
  std::vector<Op> tape_;                   // comb ops in comb_order_ order
  std::vector<std::int32_t> fan_begin_;    // wire id -> [begin,end) CSR ...
  std::vector<std::int32_t> fan_ops_;      // ... over dependent tape indices
  std::vector<std::int32_t> tape_in_begin_;  // tape op -> input wires CSR ...
  std::vector<std::int32_t> tape_in_wires_;  // ... (optimizer-resolved ids)
  std::vector<std::vector<std::int32_t>> level_queue_;  // dirty worklist
  std::vector<std::uint8_t> queued_;       // per tape op
  std::int64_t dirty_count_ = 0;
  std::vector<std::uint64_t> scratch_;     // general-path output buffer
  std::vector<std::uint8_t> is_input_;     // per wire: design input?
  // DCE'd-but-observable logic: kept off the tape, re-evaluated only
  // when a peek asks for one of its wires (keeps peeks bit-identical).
  std::vector<std::int32_t> lazy_comps_;   // dead comb comps, topo order
  std::vector<std::uint8_t> wire_lazy_;    // per wire: driven by a dead comp
  bool lazy_stale_ = true;
  SimActivity activity_;

  std::size_t auto_threaded_min_ops_ = 256;

  // Threaded backend (chdl/threaded.hpp); built lazily on first use of
  // EvalMode::kThreaded and kept across mode switches.
  RegionBuildOptions region_opts_{};
  std::unique_ptr<ThreadedBackend> threaded_;
};

}  // namespace atlantis::chdl
