// Levelized cycle simulator for CHDL designs.
//
// The simulator keeps every wire's value in one flat word array (no
// allocation on the evaluation path), evaluates combinational components
// in topological order, and latches registers and RAM ports on explicit
// clock edges. Synchronous-read RAMs return the pre-edge memory contents
// when an address is written on the same edge (read-before-write).
//
// The application drives the design directly — poke inputs, clock, peek
// outputs — which is the CHDL workflow: the C++ program that will operate
// the real FPGA is also its test bench.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chdl/design.hpp"

namespace atlantis::chdl {

class Simulator {
 public:
  /// Elaborates the design: levelizes combinational logic (throwing
  /// util::Error on a combinational cycle), allocates flat storage and
  /// applies power-up values.
  explicit Simulator(const Design& design);

  const Design& design() const { return design_; }

  /// Drives an input port.
  void poke(Wire input, const BitVec& value);
  void poke(Wire input, std::uint64_t value) {
    poke(input, BitVec(input.width, value));
  }
  void poke(const std::string& port, std::uint64_t value);

  /// Reads any wire's current value (combinational logic is brought
  /// up to date first).
  BitVec peek(Wire w);
  std::uint64_t peek_u64(Wire w);
  std::uint64_t peek_u64(const std::string& port);

  /// Applies one positive clock edge on the given domain, then
  /// re-evaluates combinational logic.
  void step(ClockId clock = {});
  /// Applies `n` edges on domain 0.
  void run(int n);

  /// Edges applied so far per clock domain.
  std::uint64_t cycles(ClockId clock = {}) const {
    return cycle_count_.at(static_cast<std::size_t>(clock.id));
  }

  /// Direct RAM access for loading images / reading results without
  /// simulating a host bus (tests and loaders use this; the driver path
  /// goes through the design's host interface instead).
  void write_ram(int ram, std::int64_t addr, const BitVec& value);
  BitVec read_ram(int ram, std::int64_t addr) const;

  /// Observer called after every clock edge (used by the VCD writer).
  using EdgeHook = std::function<void(Simulator&, ClockId)>;
  void set_edge_hook(EdgeHook hook) { edge_hook_ = std::move(hook); }

  /// Re-applies power-up values (registers to init, RAM reads to zero;
  /// RAM contents are preserved, ROMs reloaded).
  void reset();

 private:
  struct WireSlot {
    std::int32_t offset = 0;  // index into values_
    std::int32_t words = 0;
    std::int32_t width = 0;
  };

  std::uint64_t* wire_ptr(std::int32_t id) {
    return values_.data() + slots_[static_cast<std::size_t>(id)].offset;
  }
  const std::uint64_t* wire_ptr(std::int32_t id) const {
    return values_.data() + slots_[static_cast<std::size_t>(id)].offset;
  }

  void eval_comb();
  void eval_comp(const Component& c);
  void commit_edge(ClockId clock);
  void levelize();
  void store(Wire w, const BitVec& v);
  BitVec load(Wire w) const;

  const Design& design_;
  std::vector<WireSlot> slots_;
  std::vector<std::uint64_t> values_;
  std::vector<std::int32_t> comb_order_;   // component indices, topological
  std::vector<std::int32_t> seq_comps_;    // kReg / kRamRead / kRamWrite
  std::vector<std::vector<std::uint64_t>> ram_data_;  // flat words per RAM
  std::vector<std::int32_t> ram_stride_;   // words per RAM entry
  std::vector<std::uint64_t> cycle_count_;
  // Staging for next register / RAM-read values (avoids ordering hazards).
  std::vector<std::uint64_t> stage_;
  bool comb_dirty_ = true;
  EdgeHook edge_hook_;
};

}  // namespace atlantis::chdl
