#include "chdl/hostif.hpp"

#include "util/status.hpp"

namespace atlantis::chdl {

HostInterface::HostInterface(Simulator& sim, ClockId clock)
    : sim_(sim), clock_(clock) {
  const Design& d = sim.design();
  addr_ = d.port("host_addr");
  wdata_ = d.port("host_wdata");
  we_ = d.port("host_we");
  rdata_ = d.port("host_rdata");
}

void HostInterface::write(std::uint32_t addr, std::uint64_t data) {
  sim_.poke(addr_, BitVec(addr_.width, addr));
  sim_.poke(wdata_, BitVec(wdata_.width, data));
  sim_.poke(we_, BitVec(1, 1));
  sim_.step(clock_);
  sim_.poke(we_, BitVec(1, 0));
}

std::uint64_t HostInterface::read(std::uint32_t addr) {
  sim_.poke(addr_, BitVec(addr_.width, addr));
  return sim_.peek(rdata_).to_u64();
}

void HostInterface::write_block(std::uint32_t addr,
                                std::span<const std::uint64_t> data) {
  sim_.poke(addr_, BitVec(addr_.width, addr));
  for (const std::uint64_t word : data) {
    sim_.poke(wdata_, BitVec(wdata_.width, word));
    sim_.poke(we_, BitVec(1, 1));
    sim_.step(clock_);
  }
  sim_.poke(we_, BitVec(1, 0));
}

std::vector<std::uint64_t> HostInterface::read_block(std::uint32_t addr,
                                                     std::size_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  sim_.poke(addr_, BitVec(addr_.width, addr));
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(sim_.peek(rdata_).to_u64());
    sim_.step(clock_);
  }
  return out;
}

void HostInterface::idle(int n) {
  for (int i = 0; i < n; ++i) sim_.step(clock_);
}

}  // namespace atlantis::chdl
