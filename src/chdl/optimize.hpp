// CHDL netlist optimizer.
//
// A compiler-style pass pipeline that runs over the elaborated Design
// graph before the Simulator levelizes and compiles its op tape:
//
//   1. fold — constant propagation/folding. A component whose inputs are
//      all constants becomes a constant; a mux with a constant select
//      collapses to the chosen arm; and/or/xor/add/sub/shift simplify
//      per identity/annihilator rules (x&0 -> 0, x|0 -> x, x^x -> 0,
//      x-x -> 0, eq(x,x) -> 1, ...).
//   2. dce — dead-logic elimination. Backward sweep from every register,
//      RAM port, output and pinned (probed) wire; combinational logic
//      feeding none of them is dropped from the tape.
//   3. cse — common-subexpression elimination via hash-consing: same
//      kind + same (resolved) input wires + same parameters produce one
//      op; commutative kinds are input-order normalized.
//   4. fuse — peephole fusion of hot adjacent pairs into fused tape
//      opcodes (not+and -> and-not, compare-to-constant immediates,
//      slice-of-concat forwarding) so the single-word fast path executes
//      fewer dispatches.
//
// The Design itself is NEVER mutated — gate/fit accounting (chdl::stats,
// bench_a4) always sees the netlist as elaborated. The optimizer's
// output is a side table the Simulator consumes:
//
//   * forward[]  — wire forwarding map. A wire optimized away by an
//     identity or CSE aliases its surviving representative (same
//     width); the simulator points both wires at one storage slot, so
//     pokes/peeks/VCD stay bit-identical.
//   * fold values — wires proven constant; the simulator writes them
//     once at reset and never evaluates their producers again.
//   * comp_alive[] — which combinational components still compile onto
//     the op tape. Removed-but-observable logic (DCE) is re-evaluated
//     lazily if a peek ever asks for it.
//   * fused[]    — per-component fused opcode records.
//
// Every transformation preserves exact bit-level semantics for every
// wire, which tests/chdl/test_fuzz.cpp proves differentially against
// the unoptimized full-sweep engine (every wire, RAM word and VCD byte).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chdl/design.hpp"
#include "chdl/stats.hpp"

namespace atlantis::chdl {

/// Fused tape opcodes produced by the peephole pass. All fused forms are
/// restricted to single-word (<= 64 bit) operands so they always take
/// the simulator's fast path.
enum class FusedOp : std::uint8_t {
  kNone,
  kAndNot,    // out = in0 & ~in1        (and over an inverter)
  kOrNot,     // out = in0 | ~in1        (or over an inverter)
  kEqImm,     // out = in0 == imm        (compare to constant)
  kNeImm,     // out = in0 != imm        (inverted compare to constant)
  kUltImm,    // out = in0 < imm
  kImmUlt,    // out = imm < in0
  kAddImm,    // out = in0 + imm
  kSubImm,    // out = in0 - imm
  kAndImm,    // out = in0 & imm
  kOrImm,     // out = in0 | imm
  kXorImm,    // out = in0 ^ imm
  kSliceImm,  // out = (in0 >> imm) & width_mask   (slice-of-concat)
};

/// One fused component: the opcode plus its rewritten operands. `in1` is
/// only used by the two-input forms (kAndNot/kOrNot).
struct FusedComp {
  FusedOp op = FusedOp::kNone;
  Wire in0{};
  Wire in1{};
  std::uint64_t imm = 0;
};

/// Pass toggles plus wires that must survive dead-logic elimination
/// (e.g. internal signals a test bench probes by handle).
struct OptimizeOptions {
  bool fold = true;
  bool dce = true;
  bool cse = true;
  bool fuse = true;
  std::vector<Wire> keep;
};

/// Result of an optimizer run over one Design. Indexed by the design's
/// component indices / wire ids; see the file comment for semantics.
struct OptimizedNetlist {
  std::vector<std::uint8_t> comp_alive;  // per component (comb kinds only)
  std::vector<std::int32_t> forward;     // wire id -> representative wire id
  std::vector<BitVec> fold_value;        // per wire; empty() if not folded
  std::unordered_map<std::int32_t, FusedComp> fused;  // comp idx -> fusion
  OptimizeReport report;

  /// Follows the forwarding map to a wire's surviving representative.
  Wire rep(Wire w) const {
    if (!w.valid()) return w;
    return Wire{forward[static_cast<std::size_t>(w.id)], w.width};
  }
  bool folded(std::int32_t wire_id) const {
    return !fold_value[static_cast<std::size_t>(wire_id)].empty();
  }
};

/// Runs the pass pipeline. Pure function of the design: the design is
/// not modified and the result references it by index only.
OptimizedNetlist optimize(const Design& design,
                          const OptimizeOptions& opts = {});

}  // namespace atlantis::chdl
