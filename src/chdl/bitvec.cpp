#include "chdl/bitvec.hpp"

#include <algorithm>
#include <bit>

namespace atlantis::chdl {

void BitVec::mask_top() {
  const int rem = width_ % 64;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= util::low_mask(rem);
  }
}

BitVec BitVec::from_binary(const std::string& bits) {
  ATLANTIS_CHECK(!bits.empty(), "empty binary literal");
  BitVec v(static_cast<int>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    ATLANTIS_CHECK(c == '0' || c == '1', "binary literal must be 0/1");
    v.set_bit(static_cast<int>(bits.size() - 1 - i), c == '1');
  }
  return v;
}

BitVec BitVec::ones(int width) {
  BitVec v(width);
  std::fill(v.words_.begin(), v.words_.end(), ~std::uint64_t{0});
  v.mask_top();
  return v;
}

std::uint64_t BitVec::to_u64() const {
  ATLANTIS_CHECK(width_ <= 64, "BitVec wider than 64 bits");
  return words_.empty() ? 0 : words_[0];
}

BitVec BitVec::slice(int lo, int width) const {
  ATLANTIS_CHECK(lo >= 0 && width > 0 && lo + width <= width_,
                 "BitVec slice out of range");
  BitVec out(width);
  for (int i = 0; i < width; ++i) out.set_bit(i, bit(lo + i));
  return out;
}

BitVec BitVec::concat(const BitVec& hi, const BitVec& lo) {
  BitVec out(hi.width_ + lo.width_);
  for (int i = 0; i < lo.width_; ++i) out.set_bit(i, lo.bit(i));
  for (int i = 0; i < hi.width_; ++i) out.set_bit(lo.width_ + i, hi.bit(i));
  return out;
}

BitVec BitVec::resize(int new_width) const {
  BitVec out(new_width);
  const int n = std::min(new_width, width_);
  for (int i = 0; i < n; ++i) out.set_bit(i, bit(i));
  return out;
}

#define ATLANTIS_BITVEC_BINOP(op)                                      \
  BitVec BitVec::operator op(const BitVec& o) const {                  \
    ATLANTIS_CHECK(width_ == o.width_, "BitVec width mismatch");       \
    BitVec out(width_);                                                \
    for (std::size_t w = 0; w < words_.size(); ++w)                    \
      out.words_[w] = words_[w] op o.words_[w];                        \
    out.mask_top();                                                    \
    return out;                                                        \
  }

ATLANTIS_BITVEC_BINOP(&)
ATLANTIS_BITVEC_BINOP(|)
ATLANTIS_BITVEC_BINOP(^)
#undef ATLANTIS_BITVEC_BINOP

BitVec BitVec::operator~() const {
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = ~words_[w];
  out.mask_top();
  return out;
}

BitVec BitVec::operator+(const BitVec& o) const {
  ATLANTIS_CHECK(width_ == o.width_, "BitVec width mismatch");
  BitVec out(width_);
  unsigned __int128 carry = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(words_[w]) + o.words_[w] + carry;
    out.words_[w] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out.mask_top();
  return out;
}

BitVec BitVec::operator-(const BitVec& o) const {
  ATLANTIS_CHECK(width_ == o.width_, "BitVec width mismatch");
  // a - b == a + ~b + 1 at the vector width.
  BitVec one(width_, 1);
  return *this + (~o) + one;
}

BitVec BitVec::shl(int n) const {
  ATLANTIS_CHECK(n >= 0, "negative shift");
  BitVec out(width_);
  for (int i = width_ - 1; i >= n; --i) out.set_bit(i, bit(i - n));
  return out;
}

BitVec BitVec::shr(int n) const {
  ATLANTIS_CHECK(n >= 0, "negative shift");
  BitVec out(width_);
  for (int i = 0; i + n < width_; ++i) out.set_bit(i, bit(i + n));
  return out;
}

bool BitVec::ult(const BitVec& o) const {
  ATLANTIS_CHECK(width_ == o.width_, "BitVec width mismatch");
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != o.words_[w]) return words_[w] < o.words_[w];
  }
  return false;
}

bool BitVec::any() const {
  for (const auto w : words_)
    if (w != 0) return true;
  return false;
}

int BitVec::popcount() const {
  int n = 0;
  for (const auto w : words_) n += std::popcount(w);
  return n;
}

std::string BitVec::to_binary() const {
  std::string s(static_cast<std::size_t>(width_), '0');
  for (int i = 0; i < width_; ++i) {
    if (bit(i)) s[static_cast<std::size_t>(width_ - 1 - i)] = '1';
  }
  return s;
}

}  // namespace atlantis::chdl
