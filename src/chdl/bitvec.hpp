// Arbitrary-width two-state bit vector: the value type of CHDL.
//
// CHDL simulates synchronous FPGA designs whose flip-flops power up to a
// defined value (true of both the ORCA 3T and Virtex families used by
// ATLANTIS), so a two-state model is sufficient; there is no X/Z
// propagation. Widths are arbitrary; words are stored little-endian
// (word 0 holds bits 0..63).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::chdl {

class BitVec {
 public:
  /// Zero-width vector (invalid for most operations; default state only).
  BitVec() = default;

  /// All-zero vector of the given width.
  explicit BitVec(int width) : width_(width), words_(word_count(width), 0) {
    ATLANTIS_CHECK(width > 0, "BitVec width must be positive");
  }

  /// Vector of the given width initialized from the low bits of `value`.
  BitVec(int width, std::uint64_t value) : BitVec(width) {
    words_[0] = width >= 64 ? value : (value & util::low_mask(width));
  }

  /// Parses a binary string, MSB first ("1010" -> width 4, value 10).
  static BitVec from_binary(const std::string& bits);

  /// All-ones vector.
  static BitVec ones(int width);

  int width() const { return width_; }
  bool empty() const { return width_ == 0; }

  bool bit(int i) const {
    ATLANTIS_CHECK(i >= 0 && i < width_, "BitVec bit index out of range");
    return ((words_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1) != 0;
  }

  void set_bit(int i, bool v) {
    ATLANTIS_CHECK(i >= 0 && i < width_, "BitVec bit index out of range");
    const std::uint64_t m = std::uint64_t{1} << (i % 64);
    auto& w = words_[static_cast<std::size_t>(i) / 64];
    w = v ? (w | m) : (w & ~m);
  }

  /// Low 64 bits as an integer; width may exceed 64 (higher bits ignored
  /// by to_u64_lossy, rejected by to_u64).
  std::uint64_t to_u64() const;
  std::uint64_t to_u64_lossy() const { return words_.empty() ? 0 : words_[0]; }

  /// Bits [lo, lo+width) as a new vector.
  BitVec slice(int lo, int width) const;

  /// {hi, lo} concatenation: `hi` occupies the upper bits.
  static BitVec concat(const BitVec& hi, const BitVec& lo);

  /// Zero-extend or truncate to a new width.
  BitVec resize(int new_width) const;

  // Bitwise operators (widths must match).
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  BitVec operator~() const;

  // Modular arithmetic at the vector width.
  BitVec operator+(const BitVec& o) const;
  BitVec operator-(const BitVec& o) const;

  BitVec shl(int n) const;
  BitVec shr(int n) const;

  bool operator==(const BitVec& o) const = default;

  /// Unsigned comparison.
  bool ult(const BitVec& o) const;

  /// True if any bit is set.
  bool any() const;
  /// Number of set bits.
  int popcount() const;

  /// Binary string, MSB first.
  std::string to_binary() const;

  /// Direct word access for the simulator's flat storage.
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& words() { return words_; }

  static int word_count(int width) {
    return static_cast<int>(util::ceil_div(static_cast<std::uint64_t>(width), 64));
  }

 private:
  void mask_top();

  int width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace atlantis::chdl
