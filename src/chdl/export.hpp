// Netlist export: a structural text format (for diffing and inspection)
// and Graphviz DOT (for visualizing generated designs). The real CHDL
// emitted vendor netlists for the ORCA/Virtex place-and-route flows; the
// text format here plays that role for the simulated devices and is
// stable enough to snapshot-test generated structure.
#pragma once

#include <iosfwd>
#include <string>

#include "chdl/design.hpp"
#include "chdl/optimize.hpp"

namespace atlantis::chdl {

/// Structural netlist, one component per line:
///   %12 = and(%3, %7) : 8
///   %15 = reg(%12, en=%4) : 8 "hist/cnt3" @clk
std::string export_netlist(const Design& design);

/// Post-optimizer view of the same netlist: surviving combinational
/// components with their forwarded inputs and fused opcode mnemonics,
/// folded wires printed as constants, aliased wires as `%a -> %b`
/// forwarding lines, and DCE'd logic omitted. This is what the
/// simulator's op tape is compiled from; `export_netlist(design)` above
/// remains the as-elaborated structure bench_a4's fit numbers use.
std::string export_netlist(const Design& design, const OptimizedNetlist& opt);

/// Fused opcode mnemonics used by the optimized exporter.
const char* fused_op_name(FusedOp op);

/// Graphviz DOT of the component graph. Sequential elements are drawn
/// as boxes, combinational logic as ellipses, ports as diamonds.
std::string export_dot(const Design& design);

/// Component kind mnemonics used by both exporters.
const char* comp_kind_name(CompKind kind);

}  // namespace atlantis::chdl
