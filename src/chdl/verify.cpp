#include "chdl/verify.hpp"

#include <map>
#include <sstream>

#include "chdl/sim.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace atlantis::chdl {

EquivalenceReport check_equivalence(const Design& a, const Design& b,
                                    const EquivalenceOptions& opts) {
  // Interface check: identical inputs.
  std::map<std::string, int> a_inputs;
  for (const auto& [name, w] : a.inputs()) a_inputs[name] = w.width;
  std::map<std::string, int> b_inputs;
  for (const auto& [name, w] : b.inputs()) b_inputs[name] = w.width;
  if (a_inputs != b_inputs) {
    throw util::Error("designs '" + a.name() + "' and '" + b.name() +
                      "' have different input interfaces");
  }
  // Common outputs.
  std::map<std::string, Wire> b_outputs;
  for (const auto& [name, w] : b.outputs()) b_outputs[name] = w;
  std::vector<std::pair<std::string, std::pair<Wire, Wire>>> compared;
  for (const auto& [name, wa] : a.outputs()) {
    const auto it = b_outputs.find(name);
    if (it == b_outputs.end()) continue;
    ATLANTIS_CHECK(wa.width == it->second.width,
                   "output '" + name + "' has different widths");
    compared.emplace_back(name, std::make_pair(wa, it->second));
  }
  ATLANTIS_CHECK(!compared.empty(), "no common outputs to compare");

  Simulator sim_a(a, opts.sim_a);
  Simulator sim_b(b, opts.sim_b);
  util::Rng rng(opts.seed);

  EquivalenceReport report;
  for (int cycle = 0; cycle < opts.cycles; ++cycle) {
    // Identical random stimulus to both.
    for (const auto& [name, wa] : a.inputs()) {
      BitVec v(wa.width);
      for (auto& word : v.words()) word = rng.next_u64();
      v = v & BitVec::ones(wa.width);
      sim_a.poke(wa, v);
      sim_b.poke(b.port(name), v);
    }
    if (cycle >= opts.warmup) {
      for (const auto& [name, wires] : compared) {
        const BitVec va = sim_a.peek(wires.first);
        const BitVec vb = sim_b.peek(wires.second);
        if (!(va == vb)) {
          std::ostringstream os;
          os << "cycle " << cycle << ", output '" << name
             << "': " << a.name() << "=0b" << va.to_binary() << " vs "
             << b.name() << "=0b" << vb.to_binary();
          report.equivalent = false;
          report.mismatch = os.str();
          report.cycles_run = static_cast<std::uint64_t>(cycle) + 1;
          return report;
        }
      }
    }
    sim_a.step();
    sim_b.step();
  }
  report.cycles_run = static_cast<std::uint64_t>(opts.cycles);
  return report;
}

std::string wire_name(const Design& d, std::int32_t wire_id) {
  for (const auto& [name, w] : d.inputs()) {
    if (w.id == wire_id) return "input '" + name + "'";
  }
  for (const auto& [name, w] : d.outputs()) {
    if (w.id == wire_id) return "output '" + name + "'";
  }
  for (const Component& c : d.components()) {
    if (c.out.valid() && c.out.id == wire_id && !c.name.empty()) {
      return "'" + c.name + "'";
    }
  }
  return "#" + std::to_string(wire_id);
}

namespace {

std::string side_label(const SimOptions& so) {
  std::string s;
  switch (so.mode) {
    case EvalMode::kEventDriven: s = "event"; break;
    case EvalMode::kThreaded:    s = "threaded"; break;
    case EvalMode::kFullSweep:   s = "full-sweep"; break;
    case EvalMode::kAuto:        s = "auto"; break;
  }
  return s + (so.optimize ? "+opt" : "");
}

}  // namespace

BackendCheckReport check_backends(const Design& d,
                                  const BackendCheckOptions& opts) {
  std::vector<SimOptions> sides = opts.sides;
  if (sides.empty()) {
    SimOptions threaded;
    threaded.mode = EvalMode::kThreaded;
    SimOptions event;
    event.mode = EvalMode::kEventDriven;
    event.optimize = false;
    SimOptions full;
    full.mode = EvalMode::kFullSweep;
    full.optimize = false;
    sides = {threaded, event, full};
  }
  ATLANTIS_CHECK(sides.size() >= 2, "check_backends needs at least 2 sides");

  std::vector<std::unique_ptr<Simulator>> sims;
  sims.reserve(sides.size());
  for (const SimOptions& so : sides) {
    sims.push_back(std::make_unique<Simulator>(d, so));
  }
  util::Rng rng(opts.seed);

  BackendCheckReport report;
  const auto diverged = [&](int cycle, const std::string& what,
                            std::size_t side, const BitVec& ref,
                            const BitVec& got) {
    std::ostringstream os;
    os << "cycle " << cycle << ", " << what << ": " << side_label(sides[0])
       << "=0b" << ref.to_binary() << " vs " << side_label(sides[side])
       << "=0b" << got.to_binary();
    report.identical = false;
    report.mismatch = os.str();
    report.cycles_run = static_cast<std::uint64_t>(cycle) + 1;
  };
  for (int cycle = 0; cycle < opts.cycles; ++cycle) {
    for (const auto& [name, w] : d.inputs()) {
      BitVec v(w.width);
      for (auto& word : v.words()) word = rng.next_u64();
      v = v & BitVec::ones(w.width);
      for (auto& sim : sims) sim->poke(w, v);
    }
    for (std::int32_t id = 0; id < d.wire_count(); ++id) {
      const Wire w{id, d.wire_width(id)};
      const BitVec ref = sims[0]->peek(w);
      for (std::size_t s = 1; s < sims.size(); ++s) {
        const BitVec got = sims[s]->peek(w);
        if (!(got == ref)) {
          diverged(cycle, "wire " + wire_name(d, id), s, ref, got);
          return report;
        }
      }
    }
    for (auto& sim : sims) sim->step();
  }
  for (std::size_t r = 0; r < d.rams().size(); ++r) {
    for (std::int64_t a = 0; a < d.rams()[r].words; ++a) {
      const BitVec ref = sims[0]->read_ram(static_cast<int>(r), a);
      for (std::size_t s = 1; s < sims.size(); ++s) {
        const BitVec got = sims[s]->read_ram(static_cast<int>(r), a);
        if (!(got == ref)) {
          diverged(opts.cycles - 1,
                   "RAM '" + d.rams()[r].name + "' word " + std::to_string(a),
                   s, ref, got);
          return report;
        }
      }
    }
  }
  report.cycles_run = static_cast<std::uint64_t>(opts.cycles);
  return report;
}

}  // namespace atlantis::chdl
