#include "chdl/verify.hpp"

#include <map>
#include <sstream>

#include "chdl/sim.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace atlantis::chdl {

EquivalenceReport check_equivalence(const Design& a, const Design& b,
                                    const EquivalenceOptions& opts) {
  // Interface check: identical inputs.
  std::map<std::string, int> a_inputs;
  for (const auto& [name, w] : a.inputs()) a_inputs[name] = w.width;
  std::map<std::string, int> b_inputs;
  for (const auto& [name, w] : b.inputs()) b_inputs[name] = w.width;
  if (a_inputs != b_inputs) {
    throw util::Error("designs '" + a.name() + "' and '" + b.name() +
                      "' have different input interfaces");
  }
  // Common outputs.
  std::map<std::string, Wire> b_outputs;
  for (const auto& [name, w] : b.outputs()) b_outputs[name] = w;
  std::vector<std::pair<std::string, std::pair<Wire, Wire>>> compared;
  for (const auto& [name, wa] : a.outputs()) {
    const auto it = b_outputs.find(name);
    if (it == b_outputs.end()) continue;
    ATLANTIS_CHECK(wa.width == it->second.width,
                   "output '" + name + "' has different widths");
    compared.emplace_back(name, std::make_pair(wa, it->second));
  }
  ATLANTIS_CHECK(!compared.empty(), "no common outputs to compare");

  Simulator sim_a(a, opts.sim_a);
  Simulator sim_b(b, opts.sim_b);
  util::Rng rng(opts.seed);

  EquivalenceReport report;
  for (int cycle = 0; cycle < opts.cycles; ++cycle) {
    // Identical random stimulus to both.
    for (const auto& [name, wa] : a.inputs()) {
      BitVec v(wa.width);
      for (auto& word : v.words()) word = rng.next_u64();
      v = v & BitVec::ones(wa.width);
      sim_a.poke(wa, v);
      sim_b.poke(b.port(name), v);
    }
    if (cycle >= opts.warmup) {
      for (const auto& [name, wires] : compared) {
        const BitVec va = sim_a.peek(wires.first);
        const BitVec vb = sim_b.peek(wires.second);
        if (!(va == vb)) {
          std::ostringstream os;
          os << "cycle " << cycle << ", output '" << name
             << "': " << a.name() << "=0b" << va.to_binary() << " vs "
             << b.name() << "=0b" << vb.to_binary();
          report.equivalent = false;
          report.mismatch = os.str();
          report.cycles_run = static_cast<std::uint64_t>(cycle) + 1;
          return report;
        }
      }
    }
    sim_a.step();
    sim_b.step();
  }
  report.cycles_run = static_cast<std::uint64_t>(opts.cycles);
  return report;
}

}  // namespace atlantis::chdl
