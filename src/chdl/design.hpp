// CHDL structural design entry.
//
// A Design is a netlist of typed components connected by Wires. As in the
// original CHDL (Kornmesser et al., PACT'98), the netlist is produced by
// ordinary C++ code — loops, functions and classes generate structure —
// and the very same application program later drives the simulation, so
// no separate hardware test bench is ever written.
//
// Usage sketch:
//   Design d("histogrammer");
//   Wire hit  = d.input("hit", 1);
//   Wire bits = d.rom_lookup(...);
//   Wire cnt  = d.reg("cnt", d.add(cnt_q, one), {.enable = hit});
//   d.output("count", cnt);
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chdl/bitvec.hpp"
#include "util/status.hpp"

namespace atlantis::chdl {

/// Handle to a net in the design: an index plus its width. Cheap to copy;
/// only valid for the Design that created it.
struct Wire {
  std::int32_t id = -1;
  std::int32_t width = 0;
  bool valid() const { return id >= 0; }
};

/// Identifies one of the design's clock domains.
struct ClockId {
  std::int32_t id = 0;
};

/// Component kinds. Combinational kinds are evaluated in levelized order;
/// Reg and Ram latch on clock edges.
enum class CompKind : std::uint8_t {
  kConst,
  kNot,
  kAnd,
  kOr,
  kXor,
  kMux,        // in[0]=sel (1 bit), in[1]=if1, in[2]=if0
  kMuxN,       // in[0]=sel, in[1..]=choices (sel indexes, clamped)
  kAdd,
  kSub,
  kEq,         // 1-bit out
  kUlt,        // unsigned less-than, 1-bit out
  kReduceAnd,
  kReduceOr,
  kReduceXor,
  kSlice,      // params: a=lo
  kConcat,     // in[0]=hi ... in[n-1]=lo, MSB-first
  kShl,        // params: a=amount (constant shift)
  kShr,
  kReg,        // in[0]=d, optional in[1]=enable, in[2]=sync reset
  kRamRead,    // sync read port: in[0]=addr, optional in[1]=read enable
  kRamWrite,   // write port: in[0]=addr, in[1]=data, in[2]=we (no output)
  kInput,
  kOutput,     // in[0]=value (no new net; out aliases for bookkeeping)
};

/// One netlist component.
struct Component {
  CompKind kind = CompKind::kConst;
  std::vector<Wire> in;
  Wire out;                 // invalid for kRamWrite/kOutput
  std::int32_t a = 0;       // kind-specific parameter (slice lo, shift, ...)
  std::int32_t ram = -1;    // RAM index for kRamRead/kRamWrite
  std::int32_t clock = 0;   // clock domain for sequential kinds
  BitVec init;              // kConst value / kReg initial value
  std::string name;         // hierarchical instance name
};

/// A RAM/ROM block. Read ports have one-cycle latency (synchronous SRAM
/// semantics, matching the memory the ATLANTIS mezzanines carry).
struct RamBlock {
  std::string name;
  std::int64_t words = 0;
  std::int32_t width = 0;
  std::int32_t clock = 0;
  bool writable = true;     // false => ROM
  std::vector<BitVec> init; // optional initial contents (ROM image)
};

/// Options for registers.
struct RegOpts {
  ClockId clock{};
  Wire enable{};     // optional active-high clock enable
  Wire reset{};      // optional synchronous reset (to `init`)
  BitVec init{};     // power-up / reset value; defaults to zero
};

/// A complete structural design plus its named ports.
class Design {
 public:
  explicit Design(std::string name) : name_(std::move(name)) {
    clock_names_.push_back("clk");
  }

  const std::string& name() const { return name_; }

  // --- Clocks -------------------------------------------------------------
  /// Declares an additional clock domain (domain 0 "clk" always exists).
  ClockId add_clock(const std::string& name);
  int clock_count() const { return static_cast<int>(clock_names_.size()); }
  const std::string& clock_name(ClockId c) const {
    return clock_names_.at(static_cast<std::size_t>(c.id));
  }

  // --- Ports --------------------------------------------------------------
  Wire input(const std::string& name, int width);
  void output(const std::string& name, Wire value);
  /// Looks up a named port; throws if absent.
  Wire port(const std::string& name) const;
  bool has_port(const std::string& name) const;

  // --- Combinational primitives -------------------------------------------
  Wire constant(const BitVec& value);
  Wire constant(int width, std::uint64_t value) {
    return constant(BitVec(width, value));
  }
  Wire bnot(Wire a);
  Wire band(Wire a, Wire b);
  Wire bor(Wire a, Wire b);
  Wire bxor(Wire a, Wire b);
  Wire mux(Wire sel, Wire if1, Wire if0);
  /// sel selects among `choices` (index clamped to the last entry).
  Wire muxn(Wire sel, const std::vector<Wire>& choices);
  Wire add(Wire a, Wire b);
  Wire sub(Wire a, Wire b);
  Wire eq(Wire a, Wire b);
  Wire ult(Wire a, Wire b);
  Wire reduce_and(Wire a);
  Wire reduce_or(Wire a);
  Wire reduce_xor(Wire a);
  Wire slice(Wire a, int lo, int width);
  Wire bit(Wire a, int i) { return slice(a, i, 1); }
  /// MSB-first concatenation.
  Wire concat(const std::vector<Wire>& parts);
  Wire shl(Wire a, int amount);
  Wire shr(Wire a, int amount);
  /// Zero-extends (or truncates) to `width`.
  Wire resize(Wire a, int width);

  // --- Sequential primitives ----------------------------------------------
  Wire reg(const std::string& name, Wire d, const RegOpts& opts = {});

  /// Forward-declared register for feedback paths (counters, FSMs):
  /// returns Q immediately; connect D later with reg_connect.
  Wire reg_forward(const std::string& name, int width,
                   const RegOpts& opts = {});
  /// Binds the D input of a register created by reg_forward.
  void reg_connect(Wire q, Wire d);
  /// Throws if any forward-declared register is still unconnected.
  void check_complete() const;

  /// Declares a RAM block; returns its index for port attachment.
  int add_ram(const std::string& name, std::int64_t words, int width,
              ClockId clock = {});
  /// Declares a ROM with fixed contents.
  int add_rom(const std::string& name, std::vector<BitVec> contents,
              ClockId clock = {});
  /// Synchronous read port: data valid one cycle after `addr`.
  Wire ram_read(int ram, Wire addr, Wire enable = {});
  /// Synchronous write port.
  void ram_write(int ram, Wire addr, Wire data, Wire we);

  // --- Naming scopes --------------------------------------------------
  /// Pushes a hierarchy level; names of components created inside are
  /// prefixed "scope/". RAII helper: Scope.
  void push_scope(const std::string& name);
  void pop_scope();

  class Scope {
   public:
    Scope(Design& d, const std::string& name) : d_(d) { d_.push_scope(name); }
    ~Scope() { d_.pop_scope(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Design& d_;
  };

  // --- Introspection --------------------------------------------------
  const std::vector<Component>& components() const { return comps_; }
  const std::vector<RamBlock>& rams() const { return rams_; }
  int wire_count() const { return next_wire_; }
  int wire_width(std::int32_t id) const {
    return wire_widths_.at(static_cast<std::size_t>(id));
  }
  const std::vector<std::pair<std::string, Wire>>& inputs() const {
    return inputs_;
  }
  const std::vector<std::pair<std::string, Wire>>& outputs() const {
    return outputs_;
  }

 private:
  Wire new_wire(int width);
  Wire add_comp(CompKind kind, std::vector<Wire> in, int out_width,
                std::int32_t a = 0);
  std::string scoped_name(const std::string& base) const;
  void check_wire(Wire w) const;

  std::string name_;
  std::vector<Component> comps_;
  // Interning pool: (width, value words) -> existing kConst wire id.
  std::map<std::pair<int, std::vector<std::uint64_t>>, std::int32_t>
      const_pool_;
  std::vector<RamBlock> rams_;
  std::vector<int> wire_widths_;
  std::vector<std::pair<std::string, Wire>> inputs_;
  std::vector<std::pair<std::string, Wire>> outputs_;
  std::vector<std::string> clock_names_;
  std::vector<std::string> scope_;
  std::int32_t next_wire_ = 0;
};

}  // namespace atlantis::chdl
