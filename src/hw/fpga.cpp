#include "hw/fpga.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atlantis::hw {

const FpgaFamily& orca_3t125() {
  static const FpgaFamily f{
      .name = "ORCA 3T125",
      .gate_capacity = 186'000,
      .io_pins = 432,
      // 3T125-class parts stream roughly 1.5 Mbit of configuration data
      // over an 8-bit port at 10 MHz.
      .config_bits = 1'500'000,
      .config_clock_mhz = 10.0,
      .config_bus_bits = 8,
      .partial_reconfig = true,
      .readback = true,
      // The ORCA configuration store is addressable in column groups; we
      // model 32 frames (~46.9 kbit each), the granularity of the
      // differential loader and the region scrub.
      .config_regions = 32,
  };
  return f;
}

const FpgaFamily& virtex_xcv600() {
  static const FpgaFamily f{
      .name = "Virtex XCV600",
      .gate_capacity = 661'000,
      .io_pins = 512,
      // XCV600 bitstream is ~3.6 Mbit, SelectMAP loads 8 bits at 33 MHz.
      .config_bits = 3'600'000,
      .config_clock_mhz = 33.0,
      .config_bus_bits = 8,
      .partial_reconfig = false,
      .readback = true,
      .config_regions = 1,  // monolithic: no partial reconfiguration
  };
  return f;
}

namespace {

std::uint64_t fnv1a64(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t region_signature(const std::string& tag, int region) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a64(h, tag.data(), tag.size());
  const auto r = static_cast<std::uint64_t>(region);
  h = fnv1a64(h, &r, sizeof(r));
  return h;
}

}  // namespace

std::vector<std::uint64_t> make_region_signatures(const std::string& tag,
                                                  int regions) {
  ATLANTIS_CHECK(regions > 0, "region count must be positive");
  std::vector<std::uint64_t> sigs(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    sigs[static_cast<std::size_t>(r)] = region_signature(tag, r);
  }
  return sigs;
}

void stamp_regions(std::vector<std::uint64_t>& sigs, const std::string& tag,
                   int lo, int hi) {
  ATLANTIS_CHECK(lo >= 0 && hi >= lo &&
                     static_cast<std::size_t>(hi) <= sigs.size(),
                 "stamp_regions range out of bounds");
  for (int r = lo; r < hi; ++r) {
    sigs[static_cast<std::size_t>(r)] = region_signature(tag, r);
  }
}

int region_diff_count(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
  if (a.empty() || b.empty() || a.size() != b.size()) return -1;
  int n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++n;
  }
  return n;
}

chdl::SimOptions& FpgaDevice::default_sim_options() {
  static chdl::SimOptions options = [] {
    chdl::SimOptions o;
    o.mode = chdl::EvalMode::kAuto;
    return o;
  }();
  return options;
}

Bitstream Bitstream::from_design(const chdl::Design& design) {
  Bitstream bs;
  bs.name = design.name();
  bs.stats = chdl::analyze(design);
  bs.design = &design;
  return bs;
}

void FpgaDevice::check_fit(const chdl::NetlistStats& stats) const {
  if (stats.gate_equivalents > family_->gate_capacity) {
    throw util::CapacityError(
        "design '" + stats.design_name + "' needs " +
        std::to_string(stats.gate_equivalents) + " gates but " +
        family_->name + " provides " +
        std::to_string(family_->gate_capacity));
  }
  if (stats.io_pins > family_->io_pins) {
    throw util::CapacityError(
        "design '" + stats.design_name + "' needs " +
        std::to_string(stats.io_pins) + " I/O pins but " + family_->name +
        " provides " + std::to_string(family_->io_pins));
  }
}

util::Picoseconds FpgaDevice::config_time(std::int64_t bits) const {
  const auto clocks = util::ceil_div(static_cast<std::uint64_t>(bits),
                                     static_cast<std::uint64_t>(
                                         family_->config_bus_bits));
  return static_cast<util::Picoseconds>(clocks) *
         util::period_from_mhz(family_->config_clock_mhz);
}

util::Picoseconds FpgaDevice::region_time() const {
  return config_time(util::ceil_div(
      static_cast<std::uint64_t>(family_->config_bits),
      static_cast<std::uint64_t>(family_->config_regions)));
}

bool FpgaDevice::draw_crc_failure() {
  if (injector_ == nullptr) return false;
  if (!injector_->draw(sim::FaultKind::kConfigCrc, fault_site_)) return false;
  // The loaded bitstream failed its CRC: the device asserts INIT and
  // drops to the unconfigured state; whatever ran before is gone.
  ++crc_failures_;
  crc_ok_ = false;
  configured_ = false;
  design_name_.clear();
  sim_.reset();
  resident_sigs_.clear();
  upset_pending_ = false;
  upset_region_ = -1;
  return true;
}

bool FpgaDevice::draw_config_upset() {
  if (injector_ == nullptr || !configured_) return false;
  const auto hit = injector_->draw(sim::FaultKind::kSeuConfig, fault_site_);
  if (!hit) return false;
  ++config_upsets_;
  upset_pending_ = true;
  // Pin the upset to a frame so a region scrub can repair it without a
  // full reload. The fault parameter picks the frame deterministically.
  upset_region_ = static_cast<int>(hit->param %
                                   static_cast<std::uint64_t>(
                                       family_->config_regions));
  return true;
}

void FpgaDevice::install(const Bitstream& bs) {
  // Same resident design: the frames that moved do not disturb live
  // flip-flop/RAM state, so the simulator (and its state) survives.
  // Anything else rebuilds from the incoming bitstream.
  const bool same_design = configured_ && design_name_ == bs.name &&
                           (bs.design == nullptr || sim_ != nullptr);
  configured_ = true;
  design_name_ = bs.name;
  if (!same_design) {
    sim_.reset();
    if (bs.design != nullptr) {
      sim_ = std::make_unique<chdl::Simulator>(*bs.design, sim_options_);
    }
  }
}

util::Picoseconds FpgaDevice::configure(const Bitstream& bs) {
  check_fit(bs.stats);
  if (draw_crc_failure()) {
    // The configuration time was spent even though the load failed.
    return config_time(family_->config_bits);
  }
  crc_ok_ = true;
  upset_pending_ = false;
  upset_region_ = -1;
  configured_ = true;
  design_name_ = bs.name;
  sim_.reset();
  if (bs.design != nullptr) {
    sim_ = std::make_unique<chdl::Simulator>(*bs.design, sim_options_);
  }
  resident_sigs_ = bs.region_sigs;
  return config_time(family_->config_bits);
}

util::Picoseconds FpgaDevice::partial_reconfigure(const Bitstream& bs) {
  ATLANTIS_CHECK(family_->partial_reconfig,
                 family_->name + " does not support partial reconfiguration");
  if (!configured_) {
    throw util::StateError("partial reconfiguration of unconfigured device " +
                           name_);
  }
  ATLANTIS_CHECK(bs.fraction > 0.0 && bs.fraction <= 1.0,
                 "bitstream fraction out of range");
  check_fit(bs.stats);
  const util::Picoseconds spent = config_time(static_cast<std::int64_t>(
      static_cast<double>(family_->config_bits) * bs.fraction));
  if (draw_crc_failure()) return spent;
  crc_ok_ = true;
  upset_pending_ = false;
  upset_region_ = -1;
  design_name_ = bs.name;
  sim_.reset();
  if (bs.design != nullptr) {
    sim_ = std::make_unique<chdl::Simulator>(*bs.design, sim_options_);
  }
  resident_sigs_ = bs.region_sigs;
  return spent;
}

ReconfigOutcome FpgaDevice::load_regions(const std::vector<int>& regions,
                                         int max_region_attempts,
                                         bool differential) {
  ATLANTIS_CHECK(max_region_attempts >= 1,
                 "need at least one attempt per region");
  ReconfigOutcome outcome;
  outcome.regions_total = family_->config_regions;
  outcome.differential = differential;
  const util::Picoseconds frame = region_time();
  for (int region : regions) {
    bool loaded = false;
    for (int attempt = 1; attempt <= max_region_attempts; ++attempt) {
      outcome.time += frame;
      // One configuration-CRC opportunity per frame shifted: a failure
      // costs one frame retry, not the whole bitstream.
      const bool crc_fail =
          injector_ != nullptr &&
          injector_->draw(sim::FaultKind::kConfigCrc, fault_site_).has_value();
      if (!crc_fail) {
        loaded = true;
        break;
      }
      ++crc_failures_;
      if (attempt < max_region_attempts) {
        ++region_crc_retries_;
        ++outcome.region_retries;
      }
    }
    if (!loaded) {
      // Retry budget exhausted on this frame: the device asserts INIT
      // and drops unconfigured; the caller falls back to a full
      // configure.
      crc_ok_ = false;
      configured_ = false;
      design_name_.clear();
      sim_.reset();
      resident_sigs_.clear();
      upset_pending_ = false;
      upset_region_ = -1;
      outcome.ok = false;
      return outcome;
    }
    ++outcome.regions_loaded;
  }
  crc_ok_ = true;
  regions_loaded_ += static_cast<std::uint64_t>(outcome.regions_loaded);
  return outcome;
}

ReconfigOutcome FpgaDevice::reconfigure_diff(const Bitstream& bs,
                                             int max_region_attempts) {
  ATLANTIS_CHECK(family_->partial_reconfig,
                 family_->name + " does not support partial reconfiguration");
  ATLANTIS_CHECK(family_->config_regions > 1,
                 family_->name + " has a monolithic configuration store");
  ATLANTIS_CHECK(bs.has_regions(), "bitstream carries no region signatures");
  ATLANTIS_CHECK(static_cast<int>(bs.region_sigs.size()) ==
                     family_->config_regions,
                 "bitstream region count does not match " + family_->name);
  if (!configured_) {
    throw util::StateError("partial reconfiguration of unconfigured device " +
                           name_);
  }
  check_fit(bs.stats);

  const bool comparable =
      region_diff_count(resident_sigs_, bs.region_sigs) >= 0;
  std::vector<int> changed;
  if (comparable) {
    for (std::size_t r = 0; r < bs.region_sigs.size(); ++r) {
      if (resident_sigs_[r] != bs.region_sigs[r]) {
        changed.push_back(static_cast<int>(r));
      }
    }
    // A pending configuration upset lives in one frame; reloading that
    // frame repairs it even when the target content is unchanged.
    if (upset_pending_ && upset_region_ >= 0 &&
        !std::binary_search(changed.begin(), changed.end(), upset_region_)) {
      changed.insert(std::upper_bound(changed.begin(), changed.end(),
                                      upset_region_),
                     upset_region_);
    }
  } else {
    // Resident configuration is opaque: every frame must be assumed
    // stale. Still a region-granular load (per-frame CRC), just not a
    // differential one.
    changed.resize(static_cast<std::size_t>(family_->config_regions));
    for (int r = 0; r < family_->config_regions; ++r) {
      changed[static_cast<std::size_t>(r)] = r;
    }
  }

  ReconfigOutcome outcome =
      load_regions(changed, max_region_attempts, comparable);
  if (!outcome.ok) return outcome;
  ++partial_reconfigs_;
  upset_pending_ = false;
  upset_region_ = -1;
  install(bs);
  resident_sigs_ = bs.region_sigs;
  return outcome;
}

ReconfigOutcome FpgaDevice::self_reconfigure_region(int region,
                                                    int max_region_attempts) {
  ATLANTIS_CHECK(family_->partial_reconfig,
                 family_->name + " does not support partial reconfiguration");
  ATLANTIS_CHECK(region >= 0 && region < family_->config_regions,
                 "self-reconfiguration region out of range");
  if (!configured_) {
    throw util::StateError("self-reconfiguration of unconfigured device " +
                           name_);
  }
  // The resident design re-shifts one of its own frames from the staged
  // configuration data. The design (and its live state) stays put.
  ReconfigOutcome outcome = load_regions({region}, max_region_attempts, true);
  if (!outcome.ok) return outcome;
  ++self_reconfigs_;
  if (upset_pending_ && upset_region_ == region) {
    upset_pending_ = false;
    upset_region_ = -1;
  }
  return outcome;
}

util::Picoseconds FpgaDevice::activate(const Bitstream& bs,
                                       double fraction_of_full) {
  ATLANTIS_CHECK(fraction_of_full > 0.0 && fraction_of_full <= 1.0,
                 "activation fraction out of range");
  if (upset_pending_) {
    throw util::StateError("activation of upset device " + name_ +
                           " — reconfigure to repair first");
  }
  check_fit(bs.stats);
  crc_ok_ = true;
  configured_ = true;
  design_name_ = bs.name;
  sim_.reset();
  if (bs.design != nullptr) {
    sim_ = std::make_unique<chdl::Simulator>(*bs.design, sim_options_);
  }
  resident_sigs_ = bs.region_sigs;
  return config_time(static_cast<std::int64_t>(
      static_cast<double>(family_->config_bits) * fraction_of_full));
}

util::Picoseconds FpgaDevice::readback() const {
  ATLANTIS_CHECK(family_->readback,
                 family_->name + " does not support readback");
  if (!configured_) {
    throw util::StateError("readback of unconfigured device " + name_);
  }
  return config_time(family_->config_bits);
}

void FpgaDevice::deconfigure() {
  configured_ = false;
  design_name_.clear();
  sim_.reset();
  resident_sigs_.clear();
  upset_pending_ = false;
  upset_region_ = -1;
}

void FpgaDevice::save_state(sim::SnapshotWriter& w) const {
  w.put_bool(configured_);
  w.put_string(design_name_);
  w.put_words(resident_sigs_);
  w.put_bool(crc_ok_);
  w.put_bool(upset_pending_);
  w.put_i64(upset_region_);
  w.put_u64(crc_failures_);
  w.put_u64(config_upsets_);
  w.put_u64(partial_reconfigs_);
  w.put_u64(regions_loaded_);
  w.put_u64(region_crc_retries_);
  w.put_u64(self_reconfigs_);
  w.put_bool(sim_ != nullptr);
  if (sim_) sim_->save_state(w);
}

void FpgaDevice::load_state(sim::SnapshotReader& r) {
  const bool configured = r.get_bool();
  std::string design_name = r.get_string();
  std::vector<std::uint64_t> sigs = r.get_words();
  const bool crc_ok = r.get_bool();
  const bool upset_pending = r.get_bool();
  const int upset_region = static_cast<int>(r.get_i64());
  const std::uint64_t crc_failures = r.get_u64();
  const std::uint64_t config_upsets = r.get_u64();
  const std::uint64_t partial_reconfigs = r.get_u64();
  const std::uint64_t regions_loaded = r.get_u64();
  const std::uint64_t region_crc_retries = r.get_u64();
  const std::uint64_t self_reconfigs = r.get_u64();
  const bool has_sim = r.get_bool();
  // State restores onto configuration data, it does not carry it: when
  // the snapshot holds live design state (a simulator), the device must
  // already be configured with that design — the migration contract is
  // "ship the bitstream, then the state". A design-less configuration
  // (model-level bitstream, as the serving layer registers) is pure
  // model state and restores onto any device, configured or not.
  if (has_sim && design_name != design_name_) {
    throw util::StateError("fpga '" + name_ + "': snapshot holds design '" +
                           design_name + "' but '" +
                           (design_name_.empty() ? "<none>" : design_name_) +
                           "' is resident; configure it before load_state");
  }
  if (has_sim && !sim_) {
    throw util::StateError("fpga '" + name_ +
                           "': snapshot carries simulator state but no "
                           "simulator is resident");
  }
  configured_ = configured;
  design_name_ = std::move(design_name);
  resident_sigs_ = std::move(sigs);
  crc_ok_ = crc_ok;
  upset_pending_ = upset_pending;
  upset_region_ = upset_region;
  crc_failures_ = crc_failures;
  config_upsets_ = config_upsets;
  partial_reconfigs_ = partial_reconfigs;
  regions_loaded_ = regions_loaded;
  region_crc_retries_ = region_crc_retries;
  self_reconfigs_ = self_reconfigs;
  if (has_sim) {
    sim_->load_state(r);
  } else {
    sim_.reset();
  }
}

}  // namespace atlantis::hw
