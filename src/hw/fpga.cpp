#include "hw/fpga.hpp"

#include "util/status.hpp"

namespace atlantis::hw {

const FpgaFamily& orca_3t125() {
  static const FpgaFamily f{
      .name = "ORCA 3T125",
      .gate_capacity = 186'000,
      .io_pins = 432,
      // 3T125-class parts stream roughly 1.5 Mbit of configuration data
      // over an 8-bit port at 10 MHz.
      .config_bits = 1'500'000,
      .config_clock_mhz = 10.0,
      .config_bus_bits = 8,
      .partial_reconfig = true,
      .readback = true,
  };
  return f;
}

const FpgaFamily& virtex_xcv600() {
  static const FpgaFamily f{
      .name = "Virtex XCV600",
      .gate_capacity = 661'000,
      .io_pins = 512,
      // XCV600 bitstream is ~3.6 Mbit, SelectMAP loads 8 bits at 33 MHz.
      .config_bits = 3'600'000,
      .config_clock_mhz = 33.0,
      .config_bus_bits = 8,
      .partial_reconfig = false,
      .readback = true,
  };
  return f;
}

chdl::SimOptions& FpgaDevice::default_sim_options() {
  static chdl::SimOptions options = [] {
    chdl::SimOptions o;
    o.mode = chdl::EvalMode::kThreaded;
    return o;
  }();
  return options;
}

Bitstream Bitstream::from_design(const chdl::Design& design) {
  Bitstream bs;
  bs.name = design.name();
  bs.stats = chdl::analyze(design);
  bs.design = &design;
  return bs;
}

void FpgaDevice::check_fit(const chdl::NetlistStats& stats) const {
  if (stats.gate_equivalents > family_->gate_capacity) {
    throw util::CapacityError(
        "design '" + stats.design_name + "' needs " +
        std::to_string(stats.gate_equivalents) + " gates but " +
        family_->name + " provides " +
        std::to_string(family_->gate_capacity));
  }
  if (stats.io_pins > family_->io_pins) {
    throw util::CapacityError(
        "design '" + stats.design_name + "' needs " +
        std::to_string(stats.io_pins) + " I/O pins but " + family_->name +
        " provides " + std::to_string(family_->io_pins));
  }
}

util::Picoseconds FpgaDevice::config_time(std::int64_t bits) const {
  const auto clocks = util::ceil_div(static_cast<std::uint64_t>(bits),
                                     static_cast<std::uint64_t>(
                                         family_->config_bus_bits));
  return static_cast<util::Picoseconds>(clocks) *
         util::period_from_mhz(family_->config_clock_mhz);
}

bool FpgaDevice::draw_crc_failure() {
  if (injector_ == nullptr) return false;
  if (!injector_->draw(sim::FaultKind::kConfigCrc, fault_site_)) return false;
  // The loaded bitstream failed its CRC: the device asserts INIT and
  // drops to the unconfigured state; whatever ran before is gone.
  ++crc_failures_;
  crc_ok_ = false;
  configured_ = false;
  design_name_.clear();
  sim_.reset();
  upset_pending_ = false;
  return true;
}

bool FpgaDevice::draw_config_upset() {
  if (injector_ == nullptr || !configured_) return false;
  if (!injector_->draw(sim::FaultKind::kSeuConfig, fault_site_)) return false;
  ++config_upsets_;
  upset_pending_ = true;
  return true;
}

util::Picoseconds FpgaDevice::configure(const Bitstream& bs) {
  check_fit(bs.stats);
  if (draw_crc_failure()) {
    // The configuration time was spent even though the load failed.
    return config_time(family_->config_bits);
  }
  crc_ok_ = true;
  upset_pending_ = false;
  configured_ = true;
  design_name_ = bs.name;
  sim_.reset();
  if (bs.design != nullptr) {
    sim_ = std::make_unique<chdl::Simulator>(*bs.design, sim_options_);
  }
  return config_time(family_->config_bits);
}

util::Picoseconds FpgaDevice::partial_reconfigure(const Bitstream& bs) {
  ATLANTIS_CHECK(family_->partial_reconfig,
                 family_->name + " does not support partial reconfiguration");
  if (!configured_) {
    throw util::StateError("partial reconfiguration of unconfigured device " +
                           name_);
  }
  ATLANTIS_CHECK(bs.fraction > 0.0 && bs.fraction <= 1.0,
                 "bitstream fraction out of range");
  check_fit(bs.stats);
  const util::Picoseconds spent = config_time(static_cast<std::int64_t>(
      static_cast<double>(family_->config_bits) * bs.fraction));
  if (draw_crc_failure()) return spent;
  crc_ok_ = true;
  upset_pending_ = false;
  design_name_ = bs.name;
  sim_.reset();
  if (bs.design != nullptr) {
    sim_ = std::make_unique<chdl::Simulator>(*bs.design, sim_options_);
  }
  return spent;
}

util::Picoseconds FpgaDevice::activate(const Bitstream& bs,
                                       double fraction_of_full) {
  ATLANTIS_CHECK(fraction_of_full > 0.0 && fraction_of_full <= 1.0,
                 "activation fraction out of range");
  if (upset_pending_) {
    throw util::StateError("activation of upset device " + name_ +
                           " — reconfigure to repair first");
  }
  check_fit(bs.stats);
  crc_ok_ = true;
  configured_ = true;
  design_name_ = bs.name;
  sim_.reset();
  if (bs.design != nullptr) {
    sim_ = std::make_unique<chdl::Simulator>(*bs.design, sim_options_);
  }
  return config_time(static_cast<std::int64_t>(
      static_cast<double>(family_->config_bits) * fraction_of_full));
}

util::Picoseconds FpgaDevice::readback() const {
  ATLANTIS_CHECK(family_->readback,
                 family_->name + " does not support readback");
  if (!configured_) {
    throw util::StateError("readback of unconfigured device " + name_);
  }
  return config_time(family_->config_bits);
}

void FpgaDevice::deconfigure() {
  configured_ = false;
  design_name_.clear();
  sim_.reset();
  upset_pending_ = false;
}

}  // namespace atlantis::hw
