#include "hw/hostcpu.hpp"

namespace atlantis::hw {

HostCpuModel pentium200_mmx() {
  return HostCpuModel{.name = "Pentium-200 MMX",
                      .clock_mhz = 200.0,
                      .sustained_ipc = 0.55,
                      .flops_per_clock = 0.25};
}

HostCpuModel celeron450() {
  return HostCpuModel{.name = "Celeron-450",
                      .clock_mhz = 450.0,
                      .sustained_ipc = 0.62,
                      .flops_per_clock = 0.33};
}

HostCpuModel pentium2_300() {
  return HostCpuModel{.name = "Pentium-II/300",
                      .clock_mhz = 300.0,
                      .sustained_ipc = 0.65,
                      .flops_per_clock = 0.33};
}

}  // namespace atlantis::hw
