// S-Link model.
//
// "S-Link is a FIFO-like CERN internal standard for point-to-point
// links" (§2.1 footnote). The ACB's external-LVDS FPGA and the AIB
// mezzanines carry S-Link interfaces to the detector readout. The model
// is the protocol's visible behaviour: a unidirectional word stream with
// control words marking event fragments, link-full flow control (XOFF)
// and an error/test mode, at a configurable link clock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::hw {

/// One 32-bit S-Link transfer: data word or control word (fragment
/// delimiters carry an event id in the payload).
struct SlinkWord {
  std::uint32_t payload = 0;
  bool control = false;
  /// Transmission-error flag (the S-Link LDERR line): the word arrived,
  /// but its payload is corrupted and the receiver must discard it.
  bool lderr = false;
  bool operator==(const SlinkWord&) const = default;
};

class SlinkChannel {
 public:
  /// `fifo_words`: receive-side buffer; the link asserts XOFF when it
  /// fills and words offered during XOFF are refused (the sender's link
  /// card retries them).
  SlinkChannel(std::string name, std::size_t fifo_words = 1024,
               double clock_mhz = 40.0);

  const std::string& name() const { return name_; }
  double clock_mhz() const { return clock_mhz_; }

  /// Sender side: offers one word; returns false on XOFF (buffer full).
  bool send(const SlinkWord& word);

  /// Convenience: send an event fragment (begin marker, payload, end
  /// marker). Returns words accepted; stops early on XOFF.
  std::size_t send_fragment(std::uint32_t event_id,
                            const std::vector<std::uint32_t>& payload);

  /// Recoverable dual (the try_dma_* convention): the fault outcome of
  /// one fragment send comes back as an ErrorCode instead of having to
  /// be reverse-engineered from the counters — kXoff when flow control
  /// refused words (fragment incomplete), kTruncatedFrame when the end
  /// marker was lost, kLinkError when a payload word arrived with LDERR
  /// set. Success carries the words accepted.
  util::Result<std::size_t> try_send_fragment(
      std::uint32_t event_id, const std::vector<std::uint32_t>& payload);

  /// Receiver side: pops the next word if available.
  std::optional<SlinkWord> receive();

  bool xoff() const { return buffered() >= fifo_depth_; }
  std::size_t buffered() const { return fifo_.size() - head_; }

  /// Snapshottable leaf: FIFO contents (compacted from head_) plus the
  /// link counters and any in-progress injected XOFF burst, written into
  /// the caller's open section.
  void save_state(sim::SnapshotWriter& w) const {
    w.put_u64(buffered());
    for (std::size_t i = head_; i < fifo_.size(); ++i) {
      const SlinkWord& word = fifo_[i];
      w.put_u32(word.payload);
      w.put_bool(word.control);
      w.put_bool(word.lderr);
    }
    w.put_u64(sent_);
    w.put_u64(refused_);
    w.put_u64(link_errors_);
    w.put_u64(truncated_frames_);
    w.put_u64(retransmissions_);
    w.put_u64(forced_xoff_);
  }
  void load_state(sim::SnapshotReader& r) {
    const std::uint64_t n = r.get_u64();
    fifo_.clear();
    fifo_.reserve(n);
    head_ = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      SlinkWord word;
      word.payload = r.get_u32();
      word.control = r.get_bool();
      word.lderr = r.get_bool();
      fifo_.push_back(word);
    }
    sent_ = r.get_u64();
    refused_ = r.get_u64();
    link_errors_ = r.get_u64();
    truncated_frames_ = r.get_u64();
    retransmissions_ = r.get_u64();
    forced_xoff_ = r.get_u64();
  }

  /// Link-level statistics.
  std::uint64_t words_sent() const { return sent_; }
  std::uint64_t words_refused() const { return refused_; }
  std::uint64_t link_errors() const { return link_errors_; }
  std::uint64_t truncated_frames() const { return truncated_frames_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

  // --- fault injection --------------------------------------------------
  /// Attaches a fault injector; the injection site is "slink/<name>".
  /// Word-level faults (LDERR corruption, truncation, forced XOFF) fire
  /// in send()/send_fragment(); stream-level LDERR bursts fire in
  /// post_stream() and cost a full retransmission on the timeline.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
    fault_site_ = "slink/" + name_;
  }
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// Time to clock `words` across the link (one word per link clock).
  util::Picoseconds transfer_time(std::uint64_t words) const {
    return static_cast<util::Picoseconds>(words) *
           util::period_from_mhz(clock_mhz_);
  }

  /// Peak bandwidth in MB/s (32-bit words at the link clock).
  double peak_mbps() const { return clock_mhz_ * 4.0; }

  /// Test mode: loops a known pattern through the link and checks it
  /// (the S-Link "link test" feature). Returns true if the pattern
  /// survives.
  bool self_test(int words = 256);

  // --- timeline binding ------------------------------------------------
  /// Registers this link as its own timeline resource (a point-to-point
  /// link is never shared, but streams still occupy it and show up as a
  /// trace track).
  void bind(sim::Timeline& timeline) {
    timeline_ = &timeline;
    resource_ = timeline.add_resource("slink/" + name_);
  }
  bool bound() const { return timeline_ != nullptr; }
  sim::ResourceId resource() const { return resource_; }

  /// Posts a `words`-long stream (one word per link clock) onto the
  /// bound timeline no earlier than `not_before`.
  const sim::Transaction& post_stream(sim::TrackId track,
                                      std::uint64_t words,
                                      util::Picoseconds not_before,
                                      std::string label = {});

  /// Control-word markers.
  static constexpr std::uint32_t kBeginFragment = 0xB0F00000;
  static constexpr std::uint32_t kEndFragment = 0xE0F00000;

 private:
  std::string name_;
  std::size_t fifo_depth_;
  double clock_mhz_;
  std::vector<SlinkWord> fifo_;  // simple FIFO; front at index head_
  std::size_t head_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t link_errors_ = 0;
  std::uint64_t truncated_frames_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t forced_xoff_ = 0;  // words left in an injected XOFF burst
  sim::Timeline* timeline_ = nullptr;
  sim::ResourceId resource_;
  sim::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
};

}  // namespace atlantis::hw
