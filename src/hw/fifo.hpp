// FIFO buffer model.
//
// Each AIB channel buffers in two stages (§2.2): a 32k x 36 dual-ported
// FIFO directly at the I/O port, backed by a 1M x 36 synchronous-SRAM
// general-purpose buffer. The Fifo here is an occupancy model (word
// counts, not payloads): the AIB traffic simulation only needs to know
// when buffers fill and backpressure stalls the link.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace atlantis::hw {

class Fifo {
 public:
  Fifo(std::string name, std::uint64_t depth_words)
      : name_(std::move(name)), depth_(depth_words) {
    ATLANTIS_CHECK(depth_words > 0, "FIFO depth must be positive");
  }

  const std::string& name() const { return name_; }
  std::uint64_t depth() const { return depth_; }
  std::uint64_t size() const { return size_; }
  std::uint64_t free() const { return depth_ - size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == depth_; }

  /// Accepts up to `words`; returns how many actually fit.
  std::uint64_t push(std::uint64_t words) {
    const std::uint64_t accepted = std::min(words, free());
    size_ += accepted;
    pushed_ += accepted;
    rejected_ += words - accepted;
    return accepted;
  }

  /// Drains up to `words`; returns how many were available.
  std::uint64_t pop(std::uint64_t words) {
    const std::uint64_t taken = std::min(words, size_);
    size_ -= taken;
    popped_ += taken;
    return taken;
  }

  void clear() { size_ = 0; }

  std::uint64_t total_pushed() const { return pushed_; }
  std::uint64_t total_popped() const { return popped_; }
  /// Words that arrived while full (lost or stalled upstream).
  std::uint64_t total_rejected() const { return rejected_; }
  std::uint64_t high_watermark() const { return watermark_; }

  /// Call once per modelled cycle to track occupancy statistics.
  void tick() { watermark_ = std::max(watermark_, size_); }

 private:
  std::string name_;
  std::uint64_t depth_;
  std::uint64_t size_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t watermark_ = 0;
};

}  // namespace atlantis::hw
