#include "hw/slink.hpp"

#include "util/rng.hpp"

namespace atlantis::hw {

SlinkChannel::SlinkChannel(std::string name, std::size_t fifo_words,
                           double clock_mhz)
    : name_(std::move(name)), fifo_depth_(fifo_words), clock_mhz_(clock_mhz) {
  ATLANTIS_CHECK(fifo_words > 0, "S-Link buffer must not be empty");
  ATLANTIS_CHECK(clock_mhz > 0.0, "S-Link clock must be positive");
}

bool SlinkChannel::send(const SlinkWord& word) {
  if (injector_ != nullptr) {
    if (forced_xoff_ == 0) {
      if (const auto hit =
              injector_->draw(sim::FaultKind::kSlinkXoff, fault_site_)) {
        // Persistent XOFF: the link refuses this word and the next few,
        // as if the receive card's buffer logic wedged.
        forced_xoff_ = 1 + hit->param % 16;
      }
    }
    if (forced_xoff_ > 0) {
      --forced_xoff_;
      ++refused_;
      return false;
    }
  }
  if (xoff()) {
    ++refused_;
    return false;
  }
  SlinkWord delivered = word;
  if (injector_ != nullptr) {
    if (const auto hit =
            injector_->draw(sim::FaultKind::kSlinkError, fault_site_)) {
      // LDERR: the word arrives flagged, its payload corrupted by a
      // non-zero mask drawn from the site stream.
      delivered.payload ^= static_cast<std::uint32_t>(hit->param) | 1u;
      delivered.lderr = true;
      ++link_errors_;
    }
  }
  fifo_.push_back(delivered);
  ++sent_;
  return true;
}

std::size_t SlinkChannel::send_fragment(
    std::uint32_t event_id, const std::vector<std::uint32_t>& payload) {
  std::size_t accepted = 0;
  if (!send({kBeginFragment | (event_id & 0xFFFFF), true})) return accepted;
  ++accepted;
  for (const std::uint32_t w : payload) {
    if (!send({w, false})) return accepted;
    ++accepted;
  }
  if (injector_ != nullptr &&
      injector_->draw(sim::FaultKind::kSlinkTruncation, fault_site_)) {
    // Truncated frame: the end marker is lost in transit; the receiver
    // only notices when the next begin marker shows up.
    ++truncated_frames_;
    return accepted;
  }
  if (send({kEndFragment | (event_id & 0xFFFFF), true})) ++accepted;
  return accepted;
}

util::Result<std::size_t> SlinkChannel::try_send_fragment(
    std::uint32_t event_id, const std::vector<std::uint32_t>& payload) {
  const std::uint64_t errors_before = link_errors_;
  const std::uint64_t truncated_before = truncated_frames_;
  const std::size_t accepted = send_fragment(event_id, payload);
  if (accepted < payload.size() + 2 &&
      truncated_frames_ == truncated_before) {
    return util::Result<std::size_t>::failure(
        util::ErrorCode::kXoff, "slink " + name_ + ": fragment " +
                                    std::to_string(event_id) +
                                    " refused by flow control after " +
                                    std::to_string(accepted) + " words");
  }
  if (truncated_frames_ > truncated_before) {
    return util::Result<std::size_t>::failure(
        util::ErrorCode::kTruncatedFrame,
        "slink " + name_ + ": fragment " + std::to_string(event_id) +
            " lost its end marker");
  }
  if (link_errors_ > errors_before) {
    return util::Result<std::size_t>::failure(
        util::ErrorCode::kLinkError,
        "slink " + name_ + ": fragment " + std::to_string(event_id) +
            " carried " + std::to_string(link_errors_ - errors_before) +
            " corrupted word(s)");
  }
  return accepted;
}

std::optional<SlinkWord> SlinkChannel::receive() {
  if (head_ >= fifo_.size()) return std::nullopt;
  const SlinkWord w = fifo_[head_++];
  // Compact occasionally so the vector does not grow without bound.
  if (head_ > 4096 && head_ * 2 > fifo_.size()) {
    fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return w;
}

const sim::Transaction& SlinkChannel::post_stream(sim::TrackId track,
                                                  std::uint64_t words,
                                                  util::Picoseconds not_before,
                                                  std::string label) {
  ATLANTIS_CHECK(bound(), "S-Link channel is not bound to a timeline");
  if (label.empty()) label = name_ + " stream";
  if (injector_ != nullptr &&
      injector_->draw(sim::FaultKind::kSlinkError, fault_site_)) {
    // A transmission error somewhere in the stream: the whole block is
    // retransmitted (S-Link has no partial-retry granularity). The wasted
    // first pass shows up as retry time on the link resource.
    const sim::Transaction& bad =
        timeline_->post(track, sim::TxnKind::kSlinkStream, label + " (lderr)",
                        resource_, not_before, transfer_time(words),
                        words * 4);
    const util::Picoseconds bad_end = bad.end;
    const util::Picoseconds wasted = bad.duration();
    timeline_->record_fault(resource_);
    timeline_->record_retry(resource_, wasted);
    ++link_errors_;
    ++retransmissions_;
    // post() invalidates `bad`; only the captured times are used below.
    return timeline_->post(track, sim::TxnKind::kSlinkStream,
                           label + " (retransmit)", resource_, bad_end,
                           transfer_time(words), words * 4);
  }
  return timeline_->post(track, sim::TxnKind::kSlinkStream, std::move(label),
                         resource_, not_before, transfer_time(words),
                         words * 4);
}

bool SlinkChannel::self_test(int words) {
  util::Rng rng(0x51'1A'CB);
  std::vector<std::uint32_t> pattern;
  pattern.reserve(static_cast<std::size_t>(words));
  for (int i = 0; i < words; ++i) {
    pattern.push_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  // Drain whatever is buffered, then loop the pattern through.
  while (receive().has_value()) {
  }
  for (const std::uint32_t w : pattern) {
    if (!send({w, false})) return false;
  }
  for (const std::uint32_t w : pattern) {
    const auto got = receive();
    if (!got || got->control || got->payload != w) return false;
  }
  return true;
}

}  // namespace atlantis::hw
