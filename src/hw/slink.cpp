#include "hw/slink.hpp"

#include "util/rng.hpp"

namespace atlantis::hw {

SlinkChannel::SlinkChannel(std::string name, std::size_t fifo_words,
                           double clock_mhz)
    : name_(std::move(name)), fifo_depth_(fifo_words), clock_mhz_(clock_mhz) {
  ATLANTIS_CHECK(fifo_words > 0, "S-Link buffer must not be empty");
  ATLANTIS_CHECK(clock_mhz > 0.0, "S-Link clock must be positive");
}

bool SlinkChannel::send(const SlinkWord& word) {
  if (xoff()) {
    ++refused_;
    return false;
  }
  fifo_.push_back(word);
  ++sent_;
  return true;
}

std::size_t SlinkChannel::send_fragment(
    std::uint32_t event_id, const std::vector<std::uint32_t>& payload) {
  std::size_t accepted = 0;
  if (!send({kBeginFragment | (event_id & 0xFFFFF), true})) return accepted;
  ++accepted;
  for (const std::uint32_t w : payload) {
    if (!send({w, false})) return accepted;
    ++accepted;
  }
  if (send({kEndFragment | (event_id & 0xFFFFF), true})) ++accepted;
  return accepted;
}

std::optional<SlinkWord> SlinkChannel::receive() {
  if (head_ >= fifo_.size()) return std::nullopt;
  const SlinkWord w = fifo_[head_++];
  // Compact occasionally so the vector does not grow without bound.
  if (head_ > 4096 && head_ * 2 > fifo_.size()) {
    fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return w;
}

const sim::Transaction& SlinkChannel::post_stream(sim::TrackId track,
                                                  std::uint64_t words,
                                                  util::Picoseconds not_before,
                                                  std::string label) {
  ATLANTIS_CHECK(bound(), "S-Link channel is not bound to a timeline");
  if (label.empty()) label = name_ + " stream";
  return timeline_->post(track, sim::TxnKind::kSlinkStream, std::move(label),
                         resource_, not_before, transfer_time(words),
                         words * 4);
}

bool SlinkChannel::self_test(int words) {
  util::Rng rng(0x51'1A'CB);
  std::vector<std::uint32_t> pattern;
  pattern.reserve(static_cast<std::size_t>(words));
  for (int i = 0; i < words; ++i) {
    pattern.push_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  // Drain whatever is buffered, then loop the pattern through.
  while (receive().has_value()) {
  }
  for (const std::uint32_t w : pattern) {
    if (!send({w, false})) return false;
  }
  for (const std::uint32_t w : pattern) {
    const auto got = receive();
    if (!got || got->control || got->payload != w) return false;
  }
  return true;
}

}  // namespace atlantis::hw
