// Host-CPU cost model.
//
// The ATLANTIS host is "an industrial version of a standard x86 PC" with
// a Pentium-200 MMX or Celeron-450 (§2.4); the paper's software baselines
// run on a Pentium-II/300 workstation. These CPUs no longer exist, so the
// reproduction models them as simple throughput machines: a sustained
// rate of "simple operations" per second (issue width x clock derated by
// memory stalls). Baseline algorithms report abstract operation counts;
// the model converts them to wall time. EXPERIMENTS.md records the
// calibration: the TRT software histogrammer's operation count maps to
// the paper's measured 35 ms on the Pentium-II/300 within a few percent.
#pragma once

#include <string>

#include "util/units.hpp"

namespace atlantis::hw {

struct HostCpuModel {
  std::string name;
  double clock_mhz = 0.0;
  /// Sustained simple-ops per clock on pointer-chasing integer code
  /// (LUT lookups, counter increments). Sub-1 because these workloads
  /// miss cache constantly on late-90s memory systems.
  double sustained_ipc = 0.0;

  double ops_per_second() const { return clock_mhz * 1e6 * sustained_ipc; }

  util::Picoseconds time_for_ops(double ops) const {
    return static_cast<util::Picoseconds>(
        ops / ops_per_second() * static_cast<double>(util::kSecond));
  }

  /// FLOP throughput for the N-body baseline (x87, no SIMD).
  double mflops() const { return clock_mhz * flops_per_clock; }
  double flops_per_clock = 0.33;
};

/// The CompactPCI CPU module options (§2.4).
HostCpuModel pentium200_mmx();
HostCpuModel celeron450();
/// The paper's workstation baseline (§3.4).
HostCpuModel pentium2_300();

}  // namespace atlantis::hw
