#include "hw/pci.hpp"

#include <cmath>

#include "util/bitops.hpp"

namespace atlantis::hw {

DmaTransfer Plx9080::transfer(DmaDirection dir, std::uint64_t bytes) const {
  ATLANTIS_CHECK(bytes > 0, "zero-length DMA");
  const double efficiency = dir == DmaDirection::kWrite
                                ? params_.write_efficiency
                                : params_.read_efficiency;
  const double rate_mbps = params_.peak_mbps() * efficiency;
  const auto burst = static_cast<util::Picoseconds>(
      static_cast<double>(bytes) / (rate_mbps * 1.0e6) *
      static_cast<double>(util::kSecond));
  const std::uint64_t pages = util::ceil_div(bytes, params_.page_bytes);
  DmaTransfer t;
  t.bytes = bytes;
  t.duration = params_.setup_latency +
               static_cast<util::Picoseconds>(pages) *
                   params_.descriptor_latency +
               burst;
  return t;
}

}  // namespace atlantis::hw
