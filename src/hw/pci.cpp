#include "hw/pci.hpp"

#include <cmath>

#include "util/bitops.hpp"

namespace atlantis::hw {

DmaTransfer Plx9080::transfer(DmaDirection dir, std::uint64_t bytes) const {
  ATLANTIS_CHECK(bytes > 0, "zero-length DMA");
  const double efficiency = dir == DmaDirection::kWrite
                                ? params_.write_efficiency
                                : params_.read_efficiency;
  const double rate_mbps = params_.peak_mbps() * efficiency;
  const auto burst = static_cast<util::Picoseconds>(
      static_cast<double>(bytes) / (rate_mbps * 1.0e6) *
      static_cast<double>(util::kSecond));
  const std::uint64_t pages = util::ceil_div(bytes, params_.page_bytes);
  DmaTransfer t;
  t.bytes = bytes;
  t.duration = params_.setup_latency +
               static_cast<util::Picoseconds>(pages) *
                   params_.descriptor_latency +
               burst;
  return t;
}

const sim::Transaction& Plx9080::post_transfer(
    sim::TrackId track, DmaDirection dir, std::uint64_t bytes,
    util::Picoseconds not_before, std::string label,
    util::Picoseconds service_override) {
  ATLANTIS_CHECK(bound(), "Plx9080 is not bound to a timeline");
  const DmaTransfer t = transfer(dir, bytes);
  const util::Picoseconds service =
      service_override >= 0 ? service_override : t.duration;
  DmaTransfer recorded = t;
  recorded.duration = service;
  record(recorded);
  if (label.empty()) {
    label = dir == DmaDirection::kWrite ? "dma_write" : "dma_read";
  }
  return timeline_->post(track, sim::TxnKind::kPciDma, std::move(label),
                         segment_, not_before, service, bytes);
}

std::optional<sim::FaultKind> Plx9080::draw_dma_fault() {
  if (injector_ == nullptr) return std::nullopt;
  const bool stall =
      injector_->draw(sim::FaultKind::kDmaStall, fault_site_).has_value();
  const bool abort =
      injector_->draw(sim::FaultKind::kDmaAbort, fault_site_).has_value();
  if (stall) {
    ++dma_stalls_;
    return sim::FaultKind::kDmaStall;
  }
  if (abort) {
    ++dma_aborts_;
    return sim::FaultKind::kDmaAbort;
  }
  return std::nullopt;
}

const sim::Transaction& Plx9080::post_target_access(
    sim::TrackId track, util::Picoseconds not_before, std::string label) {
  ATLANTIS_CHECK(bound(), "Plx9080 is not bound to a timeline");
  if (label.empty()) label = "target_access";
  return timeline_->post(track, sim::TxnKind::kTargetAccess,
                         std::move(label), segment_, not_before,
                         target_access(), /*bytes=*/4);
}

}  // namespace atlantis::hw
