#include "hw/sdram.hpp"

namespace atlantis::hw {

Sdram::Sdram(std::string name, const SdramConfig& cfg)
    : name_(std::move(name)), cfg_(cfg) {
  ATLANTIS_CHECK(cfg.banks > 0 && cfg.row_bytes > 0, "invalid SDRAM shape");
  open_row_.assign(static_cast<std::size_t>(cfg.banks), -1);
}

std::uint64_t Sdram::access(std::uint64_t byte_addr) {
  ATLANTIS_CHECK(byte_addr < static_cast<std::uint64_t>(cfg_.capacity_bytes),
                 "SDRAM address out of range");
  ++accesses_;
  const std::uint64_t row_index =
      byte_addr / static_cast<std::uint64_t>(cfg_.row_bytes);
  const auto bank =
      static_cast<std::size_t>(row_index % static_cast<std::uint64_t>(cfg_.banks));
  const auto row = static_cast<std::int64_t>(
      row_index / static_cast<std::uint64_t>(cfg_.banks));
  if (open_row_[bank] == row) {
    ++hits_;
    return 1;  // streaming access to the open row
  }
  const bool was_open = open_row_[bank] >= 0;
  open_row_[bank] = row;
  const int penalty = (was_open ? cfg_.t_rp : 0) + cfg_.t_rcd + cfg_.t_cas;
  return static_cast<std::uint64_t>(penalty) + 1;
}

const sim::Transaction& Sdram::post_burst(sim::TrackId track,
                                          std::uint64_t cycles,
                                          std::uint64_t bytes,
                                          util::Picoseconds not_before,
                                          std::string label) {
  ATLANTIS_CHECK(bound(), "SDRAM is not bound to a timeline");
  if (label.empty()) label = name_ + " burst";
  if (injector_ != nullptr &&
      injector_->draw(sim::FaultKind::kSeuMemory, fault_site_)) {
    // A word in the burst was upset; the ECC path re-reads the row and
    // writes the corrected word back (row cycle + one word per bank).
    const sim::Transaction& main_burst = timeline_->post(
        track, sim::TxnKind::kSdramBurst, label, resource_, not_before,
        cycles_to_time(cycles), bytes);
    const util::Picoseconds main_end = main_burst.end;
    const std::uint64_t fix_cycles = static_cast<std::uint64_t>(
        cfg_.t_rp + cfg_.t_rcd + cfg_.t_cas + cfg_.banks);
    timeline_->record_fault(resource_);
    timeline_->record_retry(resource_, cycles_to_time(fix_cycles));
    ++ecc_corrections_;
    // post() invalidated `main_burst`; only main_end is used below.
    return timeline_->post(track, sim::TxnKind::kSdramBurst,
                           label + " (ecc fix)", resource_, main_end,
                           cycles_to_time(fix_cycles),
                           static_cast<std::uint64_t>(cfg_.width_bits) / 8);
  }
  return timeline_->post(track, sim::TxnKind::kSdramBurst, std::move(label),
                         resource_, not_before, cycles_to_time(cycles),
                         bytes);
}

void Sdram::reset_counters() {
  accesses_ = 0;
  hits_ = 0;
  for (auto& r : open_row_) r = -1;
}

}  // namespace atlantis::hw
