#include "hw/sram.hpp"

#include <algorithm>

namespace atlantis::hw {

SyncSram::SyncSram(std::string name, const SramConfig& cfg)
    : name_(std::move(name)), cfg_(cfg),
      stride_(chdl::BitVec::word_count(cfg.width_bits)) {
  ATLANTIS_CHECK(cfg.words > 0 && cfg.width_bits > 0 && cfg.banks > 0,
                 "invalid SRAM shape");
  data_.assign(static_cast<std::size_t>(cfg.banks) *
                   static_cast<std::size_t>(cfg.words) * stride_,
               0);
}

std::size_t SyncSram::index(int bank, std::int64_t addr) const {
  ATLANTIS_CHECK(bank >= 0 && bank < cfg_.banks, "SRAM bank out of range");
  ATLANTIS_CHECK(addr >= 0 && addr < cfg_.words, "SRAM address out of range");
  return (static_cast<std::size_t>(bank) * static_cast<std::size_t>(cfg_.words) +
          static_cast<std::size_t>(addr)) *
         static_cast<std::size_t>(stride_);
}

void SyncSram::write(int bank, std::int64_t addr, const chdl::BitVec& value) {
  ATLANTIS_CHECK(value.width() == cfg_.width_bits, "SRAM data width mismatch");
  const std::size_t i = index(bank, addr);
  std::copy(value.words().begin(), value.words().end(), data_.begin() + i);
}

chdl::BitVec SyncSram::read(int bank, std::int64_t addr) const {
  const std::size_t i = index(bank, addr);
  chdl::BitVec v(cfg_.width_bits);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(i),
            data_.begin() + static_cast<std::ptrdiff_t>(i) + stride_,
            v.words().begin());
  return v;
}

void SyncSram::flip_bit(int bank, std::int64_t addr, int bit) {
  ATLANTIS_CHECK(bit >= 0 && bit < cfg_.width_bits,
                 "SRAM bit index out of range");
  const std::size_t i = index(bank, addr);
  data_[i + static_cast<std::size_t>(bit / 64)] ^= 1ull
                                                   << (bit % 64);
}

std::optional<SramUpset> SyncSram::draw_seu() {
  if (injector_ == nullptr) return std::nullopt;
  const auto hit = injector_->draw(sim::FaultKind::kSeuMemory, fault_site_);
  if (!hit) return std::nullopt;
  SramUpset u;
  std::uint64_t p = hit->param;
  u.bank = static_cast<int>(p % static_cast<std::uint64_t>(cfg_.banks));
  p /= static_cast<std::uint64_t>(cfg_.banks);
  u.addr =
      static_cast<std::int64_t>(p % static_cast<std::uint64_t>(cfg_.words));
  p /= static_cast<std::uint64_t>(cfg_.words);
  u.bit = static_cast<int>(p % static_cast<std::uint64_t>(cfg_.width_bits));
  flip_bit(u.bank, u.addr, u.bit);
  ++seu_flips_;
  return u;
}

const sim::Transaction& SyncSram::post_burst(sim::TrackId track,
                                             std::uint64_t accesses,
                                             util::Picoseconds not_before,
                                             std::string label) {
  ATLANTIS_CHECK(bound(), "SRAM is not bound to a timeline");
  if (label.empty()) label = name_ + " burst";
  const std::uint64_t bytes =
      accesses * static_cast<std::uint64_t>(cfg_.width_bits) / 8;
  return timeline_->post(track, sim::TxnKind::kSramBurst, std::move(label),
                         resource_, not_before, time_for(accesses), bytes);
}

}  // namespace atlantis::hw
