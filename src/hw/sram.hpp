// Synchronous SRAM model: functional storage plus bank timing.
//
// ATLANTIS memory mezzanines are built from synchronous SRAM in
// application-specific shapes (§2.1): one 512k x 176 bank per TRT module,
// two 512k x 72 banks for 2-D image processing. A SyncSram serves one
// access per bank per clock; wider words and more banks are exactly how
// the paper scales the TRT trigger ("RAM access with a width of e.g.
// 4*176 bits").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chdl/bitvec.hpp"
#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/bitops.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::hw {

struct SramConfig {
  std::int64_t words = 0;
  int width_bits = 0;
  int banks = 1;
  double clock_mhz = 40.0;

  std::int64_t total_bits() const {
    return words * static_cast<std::int64_t>(width_bits) * banks;
  }
  std::int64_t total_bytes() const { return total_bits() / 8; }
};

/// Location of a single-event upset in a memory module.
struct SramUpset {
  int bank = 0;
  std::int64_t addr = 0;
  int bit = 0;
};

class SyncSram {
 public:
  explicit SyncSram(std::string name, const SramConfig& cfg);

  const SramConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  /// Functional access; each bank has `words` entries of `width_bits`.
  void write(int bank, std::int64_t addr, const chdl::BitVec& value);
  chdl::BitVec read(int bank, std::int64_t addr) const;

  /// Flips one stored bit in place (the SEU mechanism; also the repair
  /// mechanism, since flipping twice restores the word).
  void flip_bit(int bank, std::int64_t addr, int bit);

  // --- fault injection --------------------------------------------------
  /// Attaches a fault injector; the injection site is "sram/<name>".
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
    fault_site_ = "sram/" + name_;
  }
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// One SEU opportunity (a scrub window). On a hit the upset location is
  /// decoded from the draw parameter, the bit is flipped, and the
  /// location returned so the scrubber can repair it.
  std::optional<SramUpset> draw_seu();

  std::uint64_t seu_flips() const { return seu_flips_; }

  /// Snapshottable leaf: the full word array and the SEU counter, written
  /// into the caller's open section. load_state requires the same shape.
  void save_state(sim::SnapshotWriter& w) const {
    w.put_words(data_);
    w.put_u64(seu_flips_);
  }
  void load_state(sim::SnapshotReader& r) {
    std::vector<std::uint64_t> data = r.get_words();
    ATLANTIS_CHECK(data.size() == data_.size(),
                   "snapshot SRAM shape mismatch");
    data_ = std::move(data);
    seu_flips_ = r.get_u64();
  }

  /// Timing: `accesses` single-word transactions spread over the banks.
  /// Synchronous SRAM is fully pipelined — one access per bank per cycle.
  std::uint64_t cycles_for(std::uint64_t accesses) const {
    return util::ceil_div(accesses, static_cast<std::uint64_t>(cfg_.banks));
  }
  util::Picoseconds time_for(std::uint64_t accesses) const {
    return static_cast<util::Picoseconds>(cycles_for(accesses)) *
           util::period_from_mhz(cfg_.clock_mhz);
  }

  /// Peak bandwidth in MB/s at the configured clock.
  double peak_mbps() const {
    return cfg_.clock_mhz * 1e6 *
           (static_cast<double>(cfg_.width_bits) / 8.0) * cfg_.banks / 1e6;
  }

  // --- timeline binding ------------------------------------------------
  /// Registers the module as a timeline resource, one channel per bank.
  void bind(sim::Timeline& timeline) {
    timeline_ = &timeline;
    resource_ = timeline.add_resource("sram/" + name_, cfg_.banks);
  }
  bool bound() const { return timeline_ != nullptr; }
  sim::ResourceId resource() const { return resource_; }

  /// Posts `accesses` single-word transactions (spread over the banks,
  /// fully pipelined) no earlier than `not_before`.
  const sim::Transaction& post_burst(sim::TrackId track,
                                     std::uint64_t accesses,
                                     util::Picoseconds not_before,
                                     std::string label = {});

 private:
  std::size_t index(int bank, std::int64_t addr) const;

  std::string name_;
  SramConfig cfg_;
  int stride_;                        // words per entry
  std::vector<std::uint64_t> data_;  // banks * words * stride
  std::uint64_t seu_flips_ = 0;
  sim::Timeline* timeline_ = nullptr;
  sim::ResourceId resource_;
  sim::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
};

}  // namespace atlantis::hw
