// CompactPCI bus and PLX 9080 bridge timing model.
//
// Both ACB and AIB use a PLX 9080 as PCI interface, register-compatible
// with the microEnable coprocessor ("virtually all basic software ... is
// immediately available"). The host interface allows "125 MB/s max. data
// rate" (§2.1) over 32-bit/33 MHz CompactPCI.
//
// The model is transaction-level: a transfer costs a fixed setup latency
// (driver call + DMA programming), a per-page scatter/gather descriptor
// fetch, and the burst time at the direction-dependent sustained rate.
// This is the mechanism that produces Table 1's block-size dependence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::hw {

/// Direction of a DMA transfer as seen from the host.
enum class DmaDirection {
  kRead,   // board -> host memory
  kWrite,  // host memory -> board
};

/// Bus + bridge parameters. Defaults model 32-bit/33 MHz CompactPCI
/// through a PLX 9080 with the microEnable WinNT driver stack.
struct PciParams {
  double bus_clock_mhz = 33.0;
  int bus_bytes = 4;  // 32-bit PCI

  /// Sustained fraction of the 132 MB/s theoretical peak. Posted writes
  /// stream at near full rate; reads pay turnaround/latency on every
  /// burst, which is why Table 1's read column trails its write column.
  double write_efficiency = 0.93;
  double read_efficiency = 0.80;

  /// Fixed per-transfer cost: user/kernel transition, DMA programming,
  /// completion interrupt.
  util::Picoseconds setup_latency = 40 * util::kMicrosecond;

  /// Scatter/gather descriptor fetch per page of host memory.
  util::Picoseconds descriptor_latency = 700 * util::kNanosecond;
  std::uint64_t page_bytes = 4096;

  double peak_mbps() const { return bus_clock_mhz * bus_bytes; }
};

/// Result of one modelled transfer.
struct DmaTransfer {
  std::uint64_t bytes = 0;
  util::Picoseconds duration = 0;
  double mbps() const { return util::mb_per_s(bytes, duration); }
};

/// The PLX 9080 bridge: computes transfer timing and keeps lifetime
/// counters, like the chip's own DMA status registers.
class Plx9080 {
 public:
  explicit Plx9080(PciParams params = {}) : params_(params) {}

  const PciParams& params() const { return params_; }

  /// Models one block DMA in the given direction.
  DmaTransfer transfer(DmaDirection dir, std::uint64_t bytes) const;

  /// Single-word target-mode access (register read/write): one bus
  /// transaction, no DMA setup. Dominated by PCI latency.
  util::Picoseconds target_access() const {
    // Address + turnaround + data phases, ~10 bus clocks through a bridge.
    return 10 * util::period_from_mhz(params_.bus_clock_mhz);
  }

  /// Aggregate statistics (updated by record()).
  std::uint64_t total_bytes() const { return total_bytes_; }
  util::Picoseconds total_time() const { return total_time_; }
  void record(const DmaTransfer& t) {
    total_bytes_ += t.bytes;
    total_time_ += t.duration;
  }
  /// Clears the lifetime DMA counters (the chip-reset path reset_stats()
  /// on the driver goes through).
  void reset_counters() {
    total_bytes_ = 0;
    total_time_ = 0;
    dma_stalls_ = 0;
    dma_aborts_ = 0;
  }

  /// Snapshottable leaf: the lifetime DMA counters, written into the
  /// caller's open section (bindings and the injector are wiring, not
  /// state).
  void save_state(sim::SnapshotWriter& w) const {
    w.put_u64(total_bytes_);
    w.put_i64(total_time_);
    w.put_u64(dma_stalls_);
    w.put_u64(dma_aborts_);
  }
  void load_state(sim::SnapshotReader& r) {
    total_bytes_ = r.get_u64();
    total_time_ = r.get_i64();
    dma_stalls_ = r.get_u64();
    dma_aborts_ = r.get_u64();
  }

  // --- fault injection --------------------------------------------------
  /// Attaches a fault injector. `site` names this bridge's injection
  /// point ("pci/<board>"); the chip has no name of its own.
  void set_fault_injector(sim::FaultInjector* injector, std::string site) {
    injector_ = injector;
    fault_site_ = std::move(site);
  }
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// One DMA fault opportunity: draws stall and abort (both streams
  /// advance every transfer; a stall takes precedence when both fire).
  /// Returns the fault kind that fired, nullopt on a clean transfer or
  /// when no injector is attached.
  std::optional<sim::FaultKind> draw_dma_fault();

  /// DMA fault status counters, mirroring the chip's DMA status bits.
  std::uint64_t dma_stalls() const { return dma_stalls_; }
  std::uint64_t dma_aborts() const { return dma_aborts_; }

  // --- timeline binding ------------------------------------------------
  /// Binds the bridge to the crate timeline. `segment` is the shared
  /// CompactPCI bus resource every board in the crate contends for.
  void bind(sim::Timeline* timeline, sim::ResourceId segment) {
    timeline_ = timeline;
    segment_ = segment;
  }
  bool bound() const { return timeline_ != nullptr; }
  sim::Timeline* timeline() const { return timeline_; }
  sim::ResourceId segment() const { return segment_; }

  /// Posts one block DMA onto the bound timeline no earlier than
  /// `not_before`; arbitration against other boards on the shared
  /// segment happens there. Records the transfer in the lifetime
  /// counters. The posted service time is transfer()'s duration unless
  /// `service_override` >= 0 (used when bus burst and design-side drain
  /// overlap and the modelled occupancy is their max).
  const sim::Transaction& post_transfer(
      sim::TrackId track, DmaDirection dir, std::uint64_t bytes,
      util::Picoseconds not_before, std::string label = {},
      util::Picoseconds service_override = -1);

  /// Posts one target-mode access (register read/write) onto the bus.
  const sim::Transaction& post_target_access(sim::TrackId track,
                                             util::Picoseconds not_before,
                                             std::string label = {});

 private:
  PciParams params_;
  std::uint64_t total_bytes_ = 0;
  util::Picoseconds total_time_ = 0;
  std::uint64_t dma_stalls_ = 0;
  std::uint64_t dma_aborts_ = 0;
  sim::Timeline* timeline_ = nullptr;
  sim::ResourceId segment_;
  sim::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
};

}  // namespace atlantis::hw
