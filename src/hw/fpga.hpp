// FPGA device model: capacity checking, configuration, partial
// reconfiguration and readback timing.
//
// The ATLANTIS chips: Lucent ORCA 3T125 on the ACB (chosen for
// read-back/test support, asynchronous DP-RAM and *partial
// reconfiguration*, which enables hardware task switches), and Xilinx
// Virtex XCV600 on the AIB. A configured device can carry a CHDL design,
// in which case it owns a cycle simulator for it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "sim/fault.hpp"
#include "util/units.hpp"

namespace atlantis::hw {

/// Static description of an FPGA family member.
struct FpgaFamily {
  std::string name;
  std::int64_t gate_capacity = 0;   // usable system gates
  std::int64_t io_pins = 0;         // user I/O
  std::int64_t config_bits = 0;     // full bitstream size
  double config_clock_mhz = 0.0;    // serial/parallel config clock
  int config_bus_bits = 8;          // bits loaded per config clock
  bool partial_reconfig = false;
  bool readback = false;
};

/// Lucent ORCA 3T125: ~186k average gates (the paper's 4-chip matrix sums
/// to 744k), 422 used I/O signals, partial reconfiguration and readback.
const FpgaFamily& orca_3t125();

/// Xilinx Virtex XCV600 (AIB): larger gate count, no partial reconfig in
/// the generation ATLANTIS used.
const FpgaFamily& virtex_xcv600();

/// A loadable configuration: resource footprint plus (optionally) the
/// CHDL design itself for bit-accurate simulation.
struct Bitstream {
  std::string name;
  chdl::NetlistStats stats;
  const chdl::Design* design = nullptr;  // optional; enables CycleSim
  double fraction = 1.0;  // fraction of the device the bitstream covers

  /// Convenience: analyze a design and wrap it.
  static Bitstream from_design(const chdl::Design& design);
};

class FpgaDevice {
 public:
  FpgaDevice(std::string instance_name, const FpgaFamily& family)
      : name_(std::move(instance_name)), family_(&family),
        sim_options_(default_sim_options()) {}

  /// Process-wide default SimOptions for simulators built by
  /// configure()/partial_reconfigure()/activate(). Ships with the
  /// threaded region-superop backend (chdl/threaded.hpp) — the fastest
  /// engine on real device workloads — while plain `chdl::Simulator`
  /// construction elsewhere keeps the event-driven default. Mutate the
  /// reference (e.g. in a benchmark harness) to change the fleet-wide
  /// policy; per-device overrides go through set_sim_options().
  static chdl::SimOptions& default_sim_options();

  /// Per-device override; applies to the NEXT (re)configuration — an
  /// already-loaded simulator keeps its engine until the design is
  /// loaded again (use sim()->set_eval_mode for a live switch).
  void set_sim_options(const chdl::SimOptions& options) {
    sim_options_ = options;
  }
  const chdl::SimOptions& sim_options() const { return sim_options_; }

  const std::string& name() const { return name_; }
  const FpgaFamily& family() const { return *family_; }
  bool configured() const { return configured_; }
  const std::string& design_name() const { return design_name_; }

  /// Full configuration. Throws CapacityError if the netlist exceeds the
  /// gate or pin budget. Returns the configuration time.
  util::Picoseconds configure(const Bitstream& bs);

  /// Partial reconfiguration of `fraction` of the array (hardware task
  /// switch). Only legal on families with partial_reconfig; the device
  /// must already be configured.
  util::Picoseconds partial_reconfigure(const Bitstream& bs);

  /// Activates a configuration context whose data is already staged in
  /// the local configuration store (a bitstream-cache hit): only
  /// `fraction_of_full` of the full configuration data moves — the
  /// context-switch registers, not the whole bitstream — and because no
  /// data is reloaded through the serial port there is no CRC check and
  /// no CRC fault opportunity. The device must not carry a pending
  /// configuration upset (the staged copy cannot repair live state).
  util::Picoseconds activate(const Bitstream& bs, double fraction_of_full);

  /// Configuration readback (test/verify path). Returns the time to read
  /// the full bitstream back out.
  util::Picoseconds readback() const;

  /// Clears the configuration (GSR).
  void deconfigure();

  /// The simulator for the loaded design, if the bitstream carried one.
  chdl::Simulator* sim() { return sim_.get(); }

  /// Time to shift `bits` of configuration data.
  util::Picoseconds config_time(std::int64_t bits) const;

  // --- fault injection --------------------------------------------------
  /// Attaches a fault injector; the injection site is "fpga/<name>".
  /// configure()/partial_reconfigure() are configuration-CRC
  /// opportunities; draw_config_upset() is a configuration-SRAM SEU
  /// opportunity (one per scrub window).
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
    fault_site_ = "fpga/" + name_;
  }
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// True when the last (re)configuration verified. A CRC failure leaves
  /// the device deconfigured; the caller retries with a full configure.
  bool config_crc_ok() const { return crc_ok_; }

  /// One configuration-SRAM SEU opportunity. On a hit the loaded design
  /// is marked upset (readback would show a bitstream mismatch) until a
  /// reconfiguration repairs it.
  bool draw_config_upset();
  bool upset_pending() const { return upset_pending_; }

  std::uint64_t crc_failures() const { return crc_failures_; }
  std::uint64_t config_upsets() const { return config_upsets_; }

 private:
  void check_fit(const chdl::NetlistStats& stats) const;
  bool draw_crc_failure();

  std::string name_;
  const FpgaFamily* family_;
  bool configured_ = false;
  std::string design_name_;
  chdl::SimOptions sim_options_;
  std::unique_ptr<chdl::Simulator> sim_;
  bool crc_ok_ = true;
  bool upset_pending_ = false;
  std::uint64_t crc_failures_ = 0;
  std::uint64_t config_upsets_ = 0;
  sim::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
};

}  // namespace atlantis::hw
