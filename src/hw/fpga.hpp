// FPGA device model: capacity checking, configuration, partial
// reconfiguration and readback timing.
//
// The ATLANTIS chips: Lucent ORCA 3T125 on the ACB (chosen for
// read-back/test support, asynchronous DP-RAM and *partial
// reconfiguration*, which enables hardware task switches), and Xilinx
// Virtex XCV600 on the AIB. A configured device can carry a CHDL design,
// in which case it owns a cycle simulator for it.
//
// Region model (differential partial reconfiguration): a family with
// partial-reconfig support exposes its configuration store as
// `config_regions` independently addressable frames. A Bitstream may
// carry one content signature per region; the device remembers the
// signatures of the resident configuration, and reconfigure_diff()
// loads only the regions whose signatures differ — the hardware task
// switch the paper's ORCA parts were chosen for, generalized from the
// scalar `fraction` model. Each region load is its own configuration-CRC
// fault opportunity, so a CRC failure retries one frame, not the whole
// bitstream, and a configuration-SRAM upset is pinned to a region that
// a region scrub can repair without touching live design state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "sim/fault.hpp"
#include "util/units.hpp"

namespace atlantis::hw {

/// Static description of an FPGA family member.
struct FpgaFamily {
  std::string name;
  std::int64_t gate_capacity = 0;   // usable system gates
  std::int64_t io_pins = 0;         // user I/O
  std::int64_t config_bits = 0;     // full bitstream size
  double config_clock_mhz = 0.0;    // serial/parallel config clock
  int config_bus_bits = 8;          // bits loaded per config clock
  bool partial_reconfig = false;
  bool readback = false;
  /// Independently addressable configuration regions (frames). 1 means
  /// the bitstream is monolithic (no region-level reconfiguration).
  int config_regions = 1;
};

/// Lucent ORCA 3T125: ~186k average gates (the paper's 4-chip matrix sums
/// to 744k), 422 used I/O signals, partial reconfiguration and readback.
const FpgaFamily& orca_3t125();

/// Xilinx Virtex XCV600 (AIB): larger gate count, no partial reconfig in
/// the generation ATLANTIS used.
const FpgaFamily& virtex_xcv600();

/// Deterministic per-region content signatures for a bitstream: region
/// r's signature is an FNV-1a hash of (tag, r). Compose families that
/// share regions by starting from a common tag and stamping the
/// variant-specific range (stamp_regions).
std::vector<std::uint64_t> make_region_signatures(const std::string& tag,
                                                  int regions);

/// Overwrites regions [lo, hi) with signatures derived from `tag` —
/// models a variant that differs from its base only in those frames
/// (coefficient pages, pattern banks, ...).
void stamp_regions(std::vector<std::uint64_t>& sigs, const std::string& tag,
                   int lo, int hi);

/// Number of regions whose signatures differ; -1 when the two vectors
/// are incomparable (either empty, or different region counts) and a
/// differential load is impossible.
int region_diff_count(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b);

/// A loadable configuration: resource footprint plus (optionally) the
/// CHDL design itself for bit-accurate simulation.
struct Bitstream {
  std::string name;
  chdl::NetlistStats stats;
  const chdl::Design* design = nullptr;  // optional; enables CycleSim
  double fraction = 1.0;  // fraction of the device the bitstream covers
  /// Per-region content signatures (size = family config_regions).
  /// Empty: no region model; (partial) reconfiguration falls back to
  /// the scalar `fraction` path.
  std::vector<std::uint64_t> region_sigs;

  bool has_regions() const { return !region_sigs.empty(); }

  /// Convenience: analyze a design and wrap it.
  static Bitstream from_design(const chdl::Design& design);
};

/// What one differential (re)configuration did.
struct ReconfigOutcome {
  util::Picoseconds time = 0;  // frames shifted, including retried ones
  int regions_total = 0;       // regions in the target bitstream
  int regions_loaded = 0;      // distinct regions actually loaded
  int region_retries = 0;      // per-region CRC retries that succeeded
  bool differential = false;   // diffed against a comparable resident config
  bool ok = true;              // false: CRC retries exhausted, device cleared
};

class FpgaDevice {
 public:
  FpgaDevice(std::string instance_name, const FpgaFamily& family)
      : name_(std::move(instance_name)), family_(&family),
        sim_options_(default_sim_options()) {}

  /// Process-wide default SimOptions for simulators built by
  /// configure()/partial_reconfigure()/activate(). Ships with
  /// EvalMode::kAuto — per-design backend selection that picks the
  /// threaded region-superop engine for large tapes and the lighter
  /// event-driven engine for small ones (chdl/sim.hpp) — while plain
  /// `chdl::Simulator` construction elsewhere keeps the event-driven
  /// default. Mutate the reference (e.g. in a benchmark harness) to
  /// change the fleet-wide policy; per-device overrides go through
  /// set_sim_options().
  static chdl::SimOptions& default_sim_options();

  /// Per-device override; applies to the NEXT (re)configuration — an
  /// already-loaded simulator keeps its engine until the design is
  /// loaded again (use sim()->set_eval_mode for a live switch).
  void set_sim_options(const chdl::SimOptions& options) {
    sim_options_ = options;
  }
  const chdl::SimOptions& sim_options() const { return sim_options_; }

  const std::string& name() const { return name_; }
  const FpgaFamily& family() const { return *family_; }
  bool configured() const { return configured_; }
  const std::string& design_name() const { return design_name_; }

  /// Full configuration. Throws CapacityError if the netlist exceeds the
  /// gate or pin budget. Returns the configuration time.
  util::Picoseconds configure(const Bitstream& bs);

  /// Partial reconfiguration (hardware task switch), scalar model: the
  /// load shifts `fraction` of the full bitstream with a single CRC
  /// opportunity. Only legal on families with partial_reconfig; the
  /// device must already be configured. Region-aware callers use
  /// reconfigure_diff instead — the two paths are kept separate so a
  /// scheduler can A/B them on identical workloads.
  util::Picoseconds partial_reconfigure(const Bitstream& bs);

  /// Differential partial reconfiguration: loads only the regions whose
  /// signatures differ from the resident configuration (plus the upset
  /// region when a configuration upset is pending, which this repairs).
  /// Each region load is a configuration-CRC opportunity retried up to
  /// `max_region_attempts` times; exhausting the budget on any region
  /// drops the device to the unconfigured state (outcome.ok = false).
  /// Loading a bitstream with the resident design's name preserves the
  /// live simulator — configuration frames move, design state does not
  /// (this is what makes a region scrub repair non-destructive).
  ReconfigOutcome reconfigure_diff(const Bitstream& bs,
                                   int max_region_attempts = 1);

  /// Self-reconfiguration: the resident design reloads one of its own
  /// regions from the staged configuration data (driver-mediated; see
  /// AtlantisDriver::poll_self_reconfig). Preserves the simulator and
  /// repairs a pending upset pinned to that region.
  ReconfigOutcome self_reconfigure_region(int region,
                                          int max_region_attempts = 1);

  /// Activates a configuration context whose data is already staged in
  /// the local configuration store (a bitstream-cache hit): only
  /// `fraction_of_full` of the full configuration data moves — the
  /// context-switch registers, not the whole bitstream — and because no
  /// data is reloaded through the serial port there is no CRC check and
  /// no CRC fault opportunity. The device must not carry a pending
  /// configuration upset (the staged copy cannot repair live state).
  util::Picoseconds activate(const Bitstream& bs, double fraction_of_full);

  /// Configuration readback (test/verify path). Returns the time to read
  /// the full bitstream back out.
  util::Picoseconds readback() const;

  /// Clears the configuration (GSR).
  void deconfigure();

  /// The simulator for the loaded design, if the bitstream carried one.
  chdl::Simulator* sim() { return sim_.get(); }

  /// Time to shift `bits` of configuration data.
  util::Picoseconds config_time(std::int64_t bits) const;

  /// Regions in this device's configuration store and the time to shift
  /// one region's frame data.
  int region_count() const { return family_->config_regions; }
  util::Picoseconds region_time() const;

  /// Signatures of the resident configuration; empty when the resident
  /// bitstream carried none (or the device is unconfigured).
  const std::vector<std::uint64_t>& resident_regions() const {
    return resident_sigs_;
  }

  // --- fault injection --------------------------------------------------
  /// Attaches a fault injector; the injection site is "fpga/<name>".
  /// configure()/partial_reconfigure() are configuration-CRC
  /// opportunities (one per monolithic load, one per region frame on the
  /// differential path); draw_config_upset() is a configuration-SRAM SEU
  /// opportunity (one per scrub window).
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
    fault_site_ = "fpga/" + name_;
  }
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// True when the last (re)configuration verified. A CRC failure leaves
  /// the device deconfigured; the caller retries with a full configure.
  bool config_crc_ok() const { return crc_ok_; }

  /// One configuration-SRAM SEU opportunity. On a hit the loaded design
  /// is marked upset (readback would show a bitstream mismatch) until a
  /// reconfiguration repairs it. The upset is pinned to a region (the
  /// fault parameter modulo region_count), so a region scrub can repair
  /// it by reloading one frame.
  bool draw_config_upset();
  bool upset_pending() const { return upset_pending_; }
  /// Region carrying the pending upset; -1 when none is pending.
  int upset_region() const { return upset_region_; }

  /// Snapshottable leaf, written into the caller's open section: the
  /// resident configuration (design name, region signatures, CRC/upset
  /// flags), the lifetime reconfiguration counters, and — when the
  /// resident bitstream carried a design — the live simulator's complete
  /// state inline. load_state restores configuration *state*, not
  /// configuration *data*: the caller must have configured the device
  /// with the same bitstream first (load_state throws util::StateError
  /// when the resident design does not match the snapshot), which is
  /// also the migration contract — ship the bitstream, then the state.
  void save_state(sim::SnapshotWriter& w) const;
  void load_state(sim::SnapshotReader& r);

  std::uint64_t crc_failures() const { return crc_failures_; }
  std::uint64_t config_upsets() const { return config_upsets_; }
  /// Differential-path lifetime counters.
  std::uint64_t partial_reconfigs() const { return partial_reconfigs_; }
  std::uint64_t regions_loaded() const { return regions_loaded_; }
  std::uint64_t region_crc_retries() const { return region_crc_retries_; }
  std::uint64_t self_reconfigs() const { return self_reconfigs_; }

 private:
  void check_fit(const chdl::NetlistStats& stats) const;
  bool draw_crc_failure();
  /// Loads the listed regions frame by frame with per-region CRC retry;
  /// shared tail of reconfigure_diff / self_reconfigure_region.
  ReconfigOutcome load_regions(const std::vector<int>& regions,
                               int max_region_attempts, bool differential);
  void install(const Bitstream& bs);

  std::string name_;
  const FpgaFamily* family_;
  bool configured_ = false;
  std::string design_name_;
  chdl::SimOptions sim_options_;
  std::unique_ptr<chdl::Simulator> sim_;
  std::vector<std::uint64_t> resident_sigs_;
  bool crc_ok_ = true;
  bool upset_pending_ = false;
  int upset_region_ = -1;
  std::uint64_t crc_failures_ = 0;
  std::uint64_t config_upsets_ = 0;
  std::uint64_t partial_reconfigs_ = 0;
  std::uint64_t regions_loaded_ = 0;
  std::uint64_t region_crc_retries_ = 0;
  std::uint64_t self_reconfigs_ = 0;
  sim::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
};

}  // namespace atlantis::hw
