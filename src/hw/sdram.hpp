// SDRAM timing model with open-row banking.
//
// The volume-rendering mezzanine is "a single module of triple width with
// 512 MB of SDRAM organized in 8 simultaneously accessible banks" (§2.1).
// What makes or breaks the renderer is row locality: an access to the
// open row of a bank streams at one word per clock, while a row miss pays
// precharge + activate + CAS. The renderer's voxel layout is chosen to
// keep ray neighbourhoods inside open rows across the 8 banks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::hw {

struct SdramConfig {
  std::int64_t capacity_bytes = 512ll * 1024 * 1024;
  int banks = 8;
  int width_bits = 64;          // per-bank data width
  double clock_mhz = 100.0;     // "assuming 100 MHz devices"
  std::int64_t row_bytes = 2048;
  int t_rp = 3;                 // precharge, cycles
  int t_rcd = 3;                // activate-to-command, cycles
  int t_cas = 3;                // CAS latency, cycles
};

/// Stateful per-bank open-row tracker; access() returns the cycle cost of
/// one word transaction and updates the row state.
class Sdram {
 public:
  explicit Sdram(std::string name, const SdramConfig& cfg = {});

  const SdramConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  /// One word access at a byte address. Bank is decoded from the address
  /// (low-order interleaving so that consecutive rows rotate banks).
  std::uint64_t access(std::uint64_t byte_addr);

  /// Time for `cycles` at the configured clock.
  util::Picoseconds cycles_to_time(std::uint64_t cycles) const {
    return static_cast<util::Picoseconds>(cycles) *
           util::period_from_mhz(cfg_.clock_mhz);
  }

  std::uint64_t total_accesses() const { return accesses_; }
  std::uint64_t row_hits() const { return hits_; }
  std::uint64_t row_misses() const { return accesses_ - hits_; }
  double hit_rate() const {
    return accesses_ ? static_cast<double>(hits_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }
  void reset_counters();

  /// Snapshottable leaf: per-bank open rows and the access/ECC counters,
  /// written into the caller's open section.
  void save_state(sim::SnapshotWriter& w) const {
    w.put_u32(static_cast<std::uint32_t>(open_row_.size()));
    for (const std::int64_t row : open_row_) w.put_i64(row);
    w.put_u64(accesses_);
    w.put_u64(hits_);
    w.put_u64(ecc_corrections_);
  }
  void load_state(sim::SnapshotReader& r) {
    const std::uint32_t banks = r.get_u32();
    ATLANTIS_CHECK(banks == open_row_.size(),
                   "snapshot SDRAM bank count mismatch");
    for (std::int64_t& row : open_row_) row = r.get_i64();
    accesses_ = r.get_u64();
    hits_ = r.get_u64();
    ecc_corrections_ = r.get_u64();
  }

  // --- fault injection --------------------------------------------------
  /// Attaches a fault injector; the injection site is "sdram/<name>".
  /// Each post_burst() is one SEU opportunity; a hit appends an ECC
  /// correction burst to the posted transaction.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
    fault_site_ = "sdram/" + name_;
  }
  sim::FaultInjector* fault_injector() const { return injector_; }
  std::uint64_t ecc_corrections() const { return ecc_corrections_; }

  // --- timeline binding ------------------------------------------------
  /// Registers the device as a timeline resource with one channel per
  /// bank ("8 simultaneously accessible banks").
  void bind(sim::Timeline& timeline) {
    timeline_ = &timeline;
    resource_ = timeline.add_resource("sdram/" + name_, cfg_.banks);
  }
  bool bound() const { return timeline_ != nullptr; }
  sim::ResourceId resource() const { return resource_; }

  /// Posts a burst of `cycles` device cycles moving `bytes` onto one
  /// bank channel no earlier than `not_before`.
  const sim::Transaction& post_burst(sim::TrackId track,
                                     std::uint64_t cycles,
                                     std::uint64_t bytes,
                                     util::Picoseconds not_before,
                                     std::string label = {});

 private:
  std::string name_;
  SdramConfig cfg_;
  std::vector<std::int64_t> open_row_;  // -1 = closed
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t ecc_corrections_ = 0;
  sim::Timeline* timeline_ = nullptr;
  sim::ResourceId resource_;
  sim::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
};

}  // namespace atlantis::hw
