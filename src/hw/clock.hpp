// Programmable clock generators.
//
// §2 of the paper: "All clocks are programmable in the range of a few MHz
// up to at least 80 MHz. Programming is done under software control from
// the CPU module." ATLANTIS distributes a central AAB clock, per-board
// local clocks and individual I/O-port clocks; each is one ClockGenerator.
#pragma once

#include <string>

#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::hw {

class ClockGenerator {
 public:
  /// Default range matches the boards: 1..80 MHz.
  explicit ClockGenerator(std::string name, double min_mhz = 1.0,
                          double max_mhz = 80.0, double initial_mhz = 40.0)
      : name_(std::move(name)), min_mhz_(min_mhz), max_mhz_(max_mhz) {
    set_mhz(initial_mhz);
  }

  /// Reprograms the synthesizer (the software-control path from the CPU).
  void set_mhz(double mhz) {
    ATLANTIS_CHECK(mhz >= min_mhz_ && mhz <= max_mhz_,
                   "clock '" + name_ + "' frequency out of range");
    mhz_ = mhz;
  }

  double mhz() const { return mhz_; }
  util::Picoseconds period() const { return util::period_from_mhz(mhz_); }
  const std::string& name() const { return name_; }
  double min_mhz() const { return min_mhz_; }
  double max_mhz() const { return max_mhz_; }

  /// Duration of `n` cycles at the programmed frequency.
  util::Picoseconds cycles(std::uint64_t n) const {
    return static_cast<util::Picoseconds>(n) * period();
  }

 private:
  std::string name_;
  double min_mhz_;
  double max_mhz_;
  double mhz_ = 0.0;
};

}  // namespace atlantis::hw
