// ATLANTIS execution model for 2-D filtering.
//
// The streaming engine filters one pixel per clock once the line buffers
// are primed; images move over PCI DMA in both directions. The 2-D
// mezzanine (2 banks of 512k x 72 SSRAM, §2.1) holds frames on-board so
// filter chains run back to back without host round trips.
#pragma once

#include "core/driver.hpp"
#include "imgproc/filters.hpp"
#include "util/units.hpp"

namespace atlantis::imgproc {

struct ImgHwConfig {
  double clock_mhz = 40.0;
  int pipeline_latency = 8;  // line-buffer priming handled separately
  /// Filters applied back to back on-board before reading the result.
  int chained_filters = 1;
  /// Streams the frame in with an asynchronous DMA overlapping the
  /// filter pipeline (the engine consumes pixels as they arrive).
  /// Needs a driver; the default is the sequential ledger.
  bool overlap_io = false;
};

struct ImgHwResult {
  std::uint64_t compute_cycles = 0;
  util::Picoseconds compute_time = 0;
  util::Picoseconds io_time = 0;
  util::Picoseconds total_time = 0;
};

/// Timing model for filtering a width x height frame. When `driver` is
/// given, frame upload/download use its DMA model.
ImgHwResult filter_atlantis(int width, int height, const ImgHwConfig& cfg,
                            core::AtlantisDriver* driver = nullptr);

/// Host baseline time for the same frame at `ops_per_pixel`.
util::Picoseconds filter_host_time(int width, int height,
                                   double ops_per_pixel,
                                   const hw::HostCpuModel& cpu);

}  // namespace atlantis::imgproc
