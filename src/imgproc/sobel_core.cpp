#include "imgproc/sobel_core.hpp"

#include "chdl/builder.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/window.hpp"

namespace atlantis::imgproc {

SobelCoreLayout build_sobel_core(chdl::Design& d, int image_width) {
  using chdl::Wire;
  constexpr int kAccBits = 16;  // |gx|+|gy| <= 2*4*255 fits comfortably

  chdl::HostRegFile hrf(d, /*addr_bits=*/8, /*data_bits=*/32);
  const StreamWindow window = build_stream_window(d, hrf, image_width);

  // Two MACs share the one window.
  const Wire gx =
      window_mac(d, window.taps, Kernel3x3::sobel_x().k, kAccBits);
  const Wire gy =
      window_mac(d, window.taps, Kernel3x3::sobel_y().k, kAccBits);
  const Wire mag = d.add(abs_value(d, gx), abs_value(d, gy));
  const Wire clamped = clamp_u8(d, mag);
  chdl::RegOpts oopts;
  oopts.enable = window.advance;
  const Wire out = d.reg("sobel_out", clamped, oopts);
  hrf.map_read(0x02, out);

  // On-the-fly edge statistics: count output pixels above a host-set
  // threshold (an inspection system's go/no-go counter).
  const Wire threshold = hrf.write_reg("threshold", 0x05, 8);
  // Gate statistics until the line buffers hold real data.
  const Wire is_edge =
      d.band(d.band(window.advance, window.primed),
             d.bnot(d.ult(clamped, threshold)));
  hrf.map_read(0x04, chdl::counter(d, "edge_count", 32, is_edge,
                                   window.reset));
  hrf.finish();

  SobelCoreLayout layout;
  layout.image_width = image_width;
  return layout;
}

}  // namespace atlantis::imgproc
