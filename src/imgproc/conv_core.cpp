#include "imgproc/conv_core.hpp"

#include "chdl/builder.hpp"
#include "imgproc/window.hpp"
#include "util/status.hpp"

namespace atlantis::imgproc {

ConvCoreLayout build_conv_core(chdl::Design& d, int image_width,
                               const Kernel3x3& kernel) {
  using chdl::Wire;
  constexpr int kAccBits = 20;  // 8-bit pixels x 4-bit coeffs x 9 taps fits

  chdl::HostRegFile hrf(d, /*addr_bits=*/8, /*data_bits=*/32);
  const StreamWindow window = build_stream_window(d, hrf, image_width);

  // Constant-coefficient MAC, normalization shift, clamp, output reg.
  const Wire acc = window_mac(d, window.taps, kernel.k, kAccBits);
  const Wire shifted = arith_shr(d, acc, kernel.shift);
  const Wire clamped = clamp_u8(d, shifted);
  chdl::RegOpts oopts;
  oopts.enable = window.advance;
  hrf.map_read(0x02, d.reg("conv_out", clamped, oopts));
  hrf.finish();

  ConvCoreLayout layout;
  layout.image_width = image_width;
  layout.kernel = kernel;
  return layout;
}

}  // namespace atlantis::imgproc
