// Shared streaming 3x3 window front end.
//
// Both filter engines (constant-kernel convolution and the Sobel edge
// detector) consume pixels through the same structure: a host push port,
// two line-buffer RAMs recirculating the previous rows, and a 3x3
// register window. This builder generates that front end once so the
// engines only differ in their arithmetic back ends.
#pragma once

#include <array>

#include "chdl/builder.hpp"
#include "chdl/design.hpp"

namespace atlantis::imgproc {

struct StreamWindow {
  /// taps[row*3+col]: row 0 = oldest line, col 0 = leftmost column.
  std::array<chdl::Wire, 9> taps;
  /// Qualifies the cycle after a push (the window advanced).
  chdl::Wire advance;
  /// Pixel push strobe (host write to 0x01) and stream reset (0x00).
  chdl::Wire push;
  chdl::Wire reset;
  /// Pixels pushed since reset (the 0x03 counter).
  chdl::Wire count;
  /// High once the line buffers hold real image data (two rows plus the
  /// window fill); statistics gathered before this see priming garbage.
  chdl::Wire primed;
};

/// Builds the window against an existing host register file; reserves
/// host addresses 0x00 (reset) and 0x01 (pixel push), and maps the push
/// counter at 0x03.
StreamWindow build_stream_window(chdl::Design& d, chdl::HostRegFile& host,
                                 int image_width);

// --- arithmetic back-end building blocks --------------------------------

/// value * coeff as a two's-complement shift/add network at `width` bits.
chdl::Wire mul_const(chdl::Design& d, chdl::Wire value, int coeff, int width);

/// Sum of taps[i] * k[i] over the 3x3 window, two's complement.
chdl::Wire window_mac(chdl::Design& d, const std::array<chdl::Wire, 9>& taps,
                      const std::array<std::int16_t, 9>& k, int acc_bits);

/// Arithmetic right shift of a two's-complement value by a constant.
chdl::Wire arith_shr(chdl::Design& d, chdl::Wire value, int amount);

/// |value| of a two's-complement value.
chdl::Wire abs_value(chdl::Design& d, chdl::Wire value);

/// Clamp a two's-complement accumulator into [0, 255] (8-bit result).
chdl::Wire clamp_u8(chdl::Design& d, chdl::Wire acc);

}  // namespace atlantis::imgproc
