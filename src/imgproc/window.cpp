#include "imgproc/window.hpp"

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::imgproc {

StreamWindow build_stream_window(chdl::Design& d, chdl::HostRegFile& host,
                                 int image_width) {
  using chdl::Wire;
  ATLANTIS_CHECK(image_width >= 4 && image_width <= 4096,
                 "image width out of range");
  StreamWindow w;
  w.reset = host.write_strobe(0x00);
  w.push = host.write_strobe(0x01);
  const Wire pixel = d.slice(host.wdata(), 0, 8);

  // Column counter wrapping at the image width.
  const int col_bits =
      util::bit_width_of(static_cast<std::uint64_t>(image_width - 1));
  chdl::RegOpts copts;
  copts.enable = w.push;
  copts.reset = w.reset;
  const Wire col = d.reg_forward("col", col_bits, copts);
  const Wire at_end =
      chdl::eq_const(d, col, static_cast<std::uint64_t>(image_width - 1));
  d.reg_connect(col, d.mux(at_end, d.constant(col_bits, 0),
                           d.add(col, d.constant(col_bits, 1))));

  // Line buffers for rows y-1 and y-2.
  const int lb1 = d.add_ram("linebuf1", image_width, 8);
  const int lb2 = d.add_ram("linebuf2", image_width, 8);
  const Wire rd1 = d.ram_read(lb1, col, w.push);
  const Wire rd2 = d.ram_read(lb2, col, w.push);

  chdl::RegOpts popts;
  popts.enable = w.push;
  const Wire pixel_d1 = d.reg("pixel_d1", pixel, popts);
  const Wire col_d1 = d.reg("col_d1", col, popts);
  const Wire push_d1 = d.reg("push_d1", w.push, chdl::RegOpts{});
  d.ram_write(lb1, col_d1, pixel_d1, push_d1);
  d.ram_write(lb2, col_d1, rd1, push_d1);
  w.advance = push_d1;

  auto shift3 = [&](const std::string& name, Wire in,
                    int row) {
    chdl::RegOpts sopts;
    sopts.enable = push_d1;
    const Wire s0 = d.reg(name + "_0", in, sopts);
    const Wire s1 = d.reg(name + "_1", s0, sopts);
    const Wire s2 = d.reg(name + "_2", s1, sopts);
    w.taps[static_cast<std::size_t>(row * 3 + 0)] = s2;
    w.taps[static_cast<std::size_t>(row * 3 + 1)] = s1;
    w.taps[static_cast<std::size_t>(row * 3 + 2)] = s0;
  };
  shift3("win_top", rd2, 0);
  shift3("win_mid", rd1, 1);
  shift3("win_bot", pixel_d1, 2);

  w.count = chdl::counter(d, "pix_count", 32, w.push, w.reset);
  host.map_read(0x03, w.count);
  const std::uint64_t prime_pixels =
      2ull * static_cast<std::uint64_t>(image_width) + 5;
  w.primed = d.bnot(d.ult(w.count, d.constant(32, prime_pixels)));
  return w;
}

chdl::Wire mul_const(chdl::Design& d, chdl::Wire value, int coeff,
                     int width) {
  using chdl::Wire;
  const Wire zero = d.constant(width, 0);
  if (coeff == 0) return zero;
  const bool negative = coeff < 0;
  unsigned mag = static_cast<unsigned>(coeff < 0 ? -coeff : coeff);
  Wire acc = zero;
  const Wire v = d.resize(value, width);
  for (int bit = 0; mag != 0; ++bit, mag >>= 1) {
    if (mag & 1u) acc = d.add(acc, d.shl(v, bit));
  }
  return negative ? d.sub(zero, acc) : acc;
}

chdl::Wire window_mac(chdl::Design& d, const std::array<chdl::Wire, 9>& taps,
                      const std::array<std::int16_t, 9>& k, int acc_bits) {
  chdl::Wire acc = d.constant(acc_bits, 0);
  for (int i = 0; i < 9; ++i) {
    acc = d.add(acc, mul_const(d, taps[static_cast<std::size_t>(i)],
                               k[static_cast<std::size_t>(i)], acc_bits));
  }
  return acc;
}

chdl::Wire arith_shr(chdl::Design& d, chdl::Wire value, int amount) {
  if (amount == 0) return value;
  const int width = value.width;
  const chdl::Wire sign = d.bit(value, width - 1);
  const chdl::Wire logical = d.shr(value, amount);
  chdl::BitVec mask(width);
  for (int b = width - amount; b < width; ++b) mask.set_bit(b, true);
  const chdl::Wire ext =
      d.mux(sign, d.constant(mask), d.constant(width, 0));
  return d.bor(logical, ext);
}

chdl::Wire abs_value(chdl::Design& d, chdl::Wire value) {
  const chdl::Wire sign = d.bit(value, value.width - 1);
  const chdl::Wire neg = d.sub(d.constant(value.width, 0), value);
  return d.mux(sign, neg, value);
}

chdl::Wire clamp_u8(chdl::Design& d, chdl::Wire acc) {
  const int width = acc.width;
  const chdl::Wire sign = d.bit(acc, width - 1);
  const chdl::Wire over = d.reduce_or(d.slice(acc, 8, width - 9));
  const chdl::Wire low8 = d.slice(acc, 0, 8);
  return d.mux(sign, d.constant(8, 0),
               d.mux(over, d.constant(8, 255), low8));
}

}  // namespace atlantis::imgproc
