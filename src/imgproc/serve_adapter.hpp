// JobService adapter for 2-D filtering: one image tile per job.
#pragma once

#include <string>

#include "imgproc/filters.hpp"
#include "imgproc/hwmodel.hpp"
#include "serve/job.hpp"

namespace atlantis::imgproc {

/// Builds a serving-layer job that filters one tile. The tile and the
/// kernel are captured by value, so the job owns its data. The checksum
/// digests the filtered pixels (the integer kernels make hardware and
/// software bit-identical); timing comes from filter_atlantis.
serve::JobSpec make_filter_job(Gray8 tile, Kernel3x3 kernel, ImgHwConfig cfg,
                               std::string tenant, std::string config,
                               util::Picoseconds arrival = 0);

}  // namespace atlantis::imgproc
