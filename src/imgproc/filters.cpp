#include "imgproc/filters.hpp"

#include <algorithm>
#include <cstdlib>

namespace atlantis::imgproc {

Kernel3x3 Kernel3x3::box_blur() {
  return {{1, 1, 1, 1, 1, 1, 1, 1, 1}, 3};
}

Kernel3x3 Kernel3x3::sharpen() {
  return {{0, -1, 0, -1, 8, -1, 0, -1, 0}, 2};
}

Kernel3x3 Kernel3x3::gaussian() {
  return {{1, 2, 1, 2, 4, 2, 1, 2, 1}, 4};
}

Kernel3x3 Kernel3x3::sobel_x() {
  return {{-1, 0, 1, -2, 0, 2, -1, 0, 1}, 0};
}

Kernel3x3 Kernel3x3::sobel_y() {
  return {{-1, -2, -1, 0, 0, 0, 1, 2, 1}, 0};
}

namespace {

std::int32_t apply_kernel_at(const Gray8& in, const Kernel3x3& k, int x,
                             int y) {
  std::int32_t acc = 0;
  int idx = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      acc += static_cast<std::int32_t>(k.k[static_cast<std::size_t>(idx++)]) *
             in.clamped(x + dx, y + dy);
    }
  }
  return acc >> k.shift;
}

}  // namespace

Gray8 convolve3x3(const Gray8& in, const Kernel3x3& kernel) {
  Gray8 out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      out(x, y) = static_cast<std::uint8_t>(
          std::clamp(apply_kernel_at(in, kernel, x, y), 0, 255));
    }
  }
  return out;
}

Gray8 sobel_magnitude(const Gray8& in) {
  const Kernel3x3 kx = Kernel3x3::sobel_x();
  const Kernel3x3 ky = Kernel3x3::sobel_y();
  Gray8 out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      const std::int32_t gx = apply_kernel_at(in, kx, x, y);
      const std::int32_t gy = apply_kernel_at(in, ky, x, y);
      out(x, y) = static_cast<std::uint8_t>(
          std::clamp(std::abs(gx) + std::abs(gy), 0, 255));
    }
  }
  return out;
}

Gray8 median3x3(const Gray8& in) {
  Gray8 out(in.width(), in.height());
  std::array<std::uint8_t, 9> window{};
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      int idx = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          window[static_cast<std::size_t>(idx++)] = in.clamped(x + dx, y + dy);
        }
      }
      std::nth_element(window.begin(), window.begin() + 4, window.end());
      out(x, y) = window[4];
    }
  }
  return out;
}

Gray8 threshold(const Gray8& in, std::uint8_t level) {
  Gray8 out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      out(x, y) = in(x, y) >= level ? 255 : 0;
    }
  }
  return out;
}

double convolve_ops_per_pixel() {
  // 9 loads, 9 multiply-accumulates, shift, clamp, store.
  return 9.0 + 9.0 * 2.0 + 3.0;
}

double sobel_ops_per_pixel() {
  // Two kernels share the loads; plus the abs/add/clamp combine.
  return 9.0 + 2.0 * 9.0 * 2.0 + 5.0;
}

double median_ops_per_pixel() {
  // 9 loads + a ~20-comparison selection network.
  return 9.0 + 20.0;
}

}  // namespace atlantis::imgproc
