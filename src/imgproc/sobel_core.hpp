// CHDL Sobel edge-detection engine.
//
// The composed filter datapath: one streaming 3x3 window feeding two
// constant-coefficient MACs (the x and y Sobel kernels) whose absolute
// responses are summed and clamped — |gx| + |gy|, the same norm the
// software reference uses, so hardware and software agree bit for bit.
// Demonstrates how CHDL designs compose from the shared window front
// end (the "complex high level software generates the structure" claim).
//
// Host register map: as the convolution engine (0x00 reset, 0x01 push,
// 0x02 magnitude out, 0x03 pixel count), plus 0x04 = edge-pixel count at
// the programmable threshold in register 0x05.
#pragma once

#include "chdl/design.hpp"

namespace atlantis::imgproc {

struct SobelCoreLayout {
  int image_width = 0;
};

SobelCoreLayout build_sobel_core(chdl::Design& design, int image_width);

}  // namespace atlantis::imgproc
