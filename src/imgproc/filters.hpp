// 2-D local filters: the software reference for the industrial
// image-processing application (§3, "almost all image processing
// applications involve tasks where image elements have to be processed
// with local filters").
//
// All kernels are integer with a power-of-two normalization shift — the
// arithmetic an FPGA convolution engine implements — so hardware and
// software results are bit-identical.
#pragma once

#include <array>
#include <cstdint>

#include "util/image.hpp"

namespace atlantis::imgproc {

using Gray8 = util::Image<std::uint8_t>;

/// 3x3 integer kernel; output = clamp((sum(k*p) ) >> shift).
struct Kernel3x3 {
  std::array<std::int16_t, 9> k{};
  int shift = 0;

  static Kernel3x3 box_blur();    // all ones, >>3 (approximate mean)
  static Kernel3x3 sharpen();     // 5-center Laplacian sharpen
  static Kernel3x3 gaussian();    // 1-2-1 binomial, >>4
  static Kernel3x3 sobel_x();
  static Kernel3x3 sobel_y();
};

/// 3x3 convolution with edge clamping.
Gray8 convolve3x3(const Gray8& in, const Kernel3x3& kernel);

/// Sobel gradient magnitude (|gx| + |gy|, clamped) — the classic
/// edge-detection front end.
Gray8 sobel_magnitude(const Gray8& in);

/// 3x3 median filter (salt-and-pepper removal).
Gray8 median3x3(const Gray8& in);

/// Fixed threshold binarization (0 / 255).
Gray8 threshold(const Gray8& in, std::uint8_t level);

/// Abstract op counts per pixel for the host-CPU model.
double convolve_ops_per_pixel();
double sobel_ops_per_pixel();
double median_ops_per_pixel();

}  // namespace atlantis::imgproc
