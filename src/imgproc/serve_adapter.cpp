#include "imgproc/serve_adapter.hpp"

namespace atlantis::imgproc {

serve::JobSpec make_filter_job(Gray8 tile, Kernel3x3 kernel, ImgHwConfig cfg,
                               std::string tenant, std::string config,
                               util::Picoseconds arrival) {
  serve::JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = serve::JobKind::kImgTile;
  spec.config = std::move(config);
  spec.arrival = arrival;
  spec.work = [tile = std::move(tile), kernel, cfg]() {
    serve::JobOutcome out;
    const Gray8 filtered = convolve3x3(tile, kernel);
    out.checksum = serve::digest(filtered.data());
    const std::uint64_t pixels =
        static_cast<std::uint64_t>(tile.width()) *
        static_cast<std::uint64_t>(tile.height());
    out.value = static_cast<double>(pixels);
    out.detail = std::to_string(tile.width()) + "x" +
                 std::to_string(tile.height()) + " tile";
    const ImgHwResult r =
        filter_atlantis(tile.width(), tile.height(), cfg, nullptr);
    out.compute_time = r.compute_time;
    out.dma_in_bytes = pixels;   // frame in, one byte per pixel
    out.dma_out_bytes = pixels;  // result out
    return out;
  };
  return spec;
}

}  // namespace atlantis::imgproc
