// CHDL streaming 3x3 convolution engine.
//
// The classic FPGA filter datapath: pixels stream in row-major, two
// line-buffer RAMs recirculate the previous two rows, a 3x3 register
// window slides along, and a constant-coefficient MAC (built from shifts
// and adds — multipliers were LUT-expensive in this generation) produces
// one filtered pixel per clock. The kernel is baked into the netlist at
// build time, exactly like a real constant-coefficient implementation.
//
// Host register map:
//   0x00 w  reset stream state (column counter)
//   0x01 w  pixel push (low 8 bits; one pixel per write)
//   0x02 r  current filtered output (low 8 bits)
//   0x03 r  pixels pushed so far
//
// The engine produces outputs continuously; the application aligns the
// output stream to pixel centers by the fixed pipeline latency (see
// tests). Borders are handled by streaming an edge-replicated image.
#pragma once

#include "chdl/design.hpp"
#include "imgproc/filters.hpp"

namespace atlantis::imgproc {

struct ConvCoreLayout {
  int image_width = 0;
  Kernel3x3 kernel;
};

/// Builds the engine for a fixed image (row) width.
ConvCoreLayout build_conv_core(chdl::Design& design, int image_width,
                               const Kernel3x3& kernel);

}  // namespace atlantis::imgproc
