#include "imgproc/hwmodel.hpp"

#include "util/status.hpp"

namespace atlantis::imgproc {

ImgHwResult filter_atlantis(int width, int height, const ImgHwConfig& cfg,
                            core::AtlantisDriver* driver) {
  ATLANTIS_CHECK(width > 0 && height > 0, "bad frame size");
  ATLANTIS_CHECK(cfg.chained_filters >= 1, "need at least one filter");
  ImgHwResult r;
  const std::uint64_t pixels =
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
  // One pixel per clock per pass; chained filters pipeline on-board, so
  // each additional pass costs one frame of cycles (plus priming).
  const std::uint64_t priming =
      static_cast<std::uint64_t>(width) + 2 +
      static_cast<std::uint64_t>(cfg.pipeline_latency);
  r.compute_cycles =
      static_cast<std::uint64_t>(cfg.chained_filters) * (pixels + priming);
  r.compute_time = static_cast<util::Picoseconds>(r.compute_cycles) *
                   util::period_from_mhz(cfg.clock_mhz);
  if (driver != nullptr) {
    driver->set_design_clock(cfg.clock_mhz);
    const util::Picoseconds t0 = driver->elapsed();
    if (cfg.overlap_io) {
      // The streaming engine filters pixels as the frame arrives; the
      // result is read back once the pipeline drains.
      driver->dma_write_async(pixels);
      r.io_time += driver->board()
                       .pci()
                       .transfer(hw::DmaDirection::kWrite, pixels)
                       .duration;
      driver->advance(r.compute_time);
      driver->wait();
      r.io_time += driver->dma_read(pixels).duration;
    } else {
      r.io_time += driver->dma_write(pixels).duration;  // frame in
      r.io_time += driver->dma_read(pixels).duration;   // result out
      driver->advance(r.compute_time);
    }
    // Timeline span: sequential sum by default, overlapped under
    // overlap_io, queue-delay inclusive under contention.
    r.total_time = driver->elapsed() - t0;
  } else {
    r.total_time = r.compute_time + r.io_time;
  }
  return r;
}

util::Picoseconds filter_host_time(int width, int height,
                                   double ops_per_pixel,
                                   const hw::HostCpuModel& cpu) {
  const double pixels =
      static_cast<double>(width) * static_cast<double>(height);
  return cpu.time_for_ops(pixels * ops_per_pixel);
}

}  // namespace atlantis::imgproc
