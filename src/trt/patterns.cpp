#include "trt/patterns.hpp"

#include <cmath>

#include "util/status.hpp"

namespace atlantis::trt {

PatternBank::PatternBank(const DetectorGeometry& geo, int num_patterns)
    : geo_(geo) {
  ATLANTIS_CHECK(num_patterns > 0, "pattern bank must not be empty");
  // Grid: phi positions dominate; slope takes 3 values (left / straight /
  // right) and curvature 2 (stiff / bent), mirroring how trigger banks
  // trade pattern count against momentum coverage.
  constexpr int kSlopes = 3;
  constexpr int kCurvatures = 2;
  const int per_cell = kSlopes * kCurvatures;
  const int phi_steps =
      std::max(1, (num_patterns + per_cell - 1) / per_cell);
  const double phi_stride =
      static_cast<double>(geo.straws_per_layer) / phi_steps;
  static constexpr double kSlopeValues[kSlopes] = {-1.5, 0.0, 1.5};
  static constexpr double kCurvValues[kCurvatures] = {0.0, 0.02};

  patterns_.reserve(static_cast<std::size_t>(num_patterns));
  params_.reserve(static_cast<std::size_t>(num_patterns));
  for (int i = 0; i < phi_steps && pattern_count() < num_patterns; ++i) {
    for (int s = 0; s < kSlopes && pattern_count() < num_patterns; ++s) {
      for (int c = 0; c < kCurvatures && pattern_count() < num_patterns;
           ++c) {
        TrackParams t;
        t.phi = phi_stride * i;
        t.slope = kSlopeValues[s];
        t.curvature = kCurvValues[c];
        patterns_.push_back(track_straws(geo_, t));
        params_.push_back(t);
      }
    }
  }

  // Invert to per-straw pattern lists (the LUT contents).
  straw_patterns_.resize(static_cast<std::size_t>(geo.straw_count()));
  for (int p = 0; p < pattern_count(); ++p) {
    for (const std::int32_t s : patterns_[static_cast<std::size_t>(p)]) {
      straw_patterns_[static_cast<std::size_t>(s)].push_back(p);
    }
  }
}

chdl::BitVec PatternBank::lut_row(std::int32_t s) const {
  chdl::BitVec row(pattern_count());
  for (const std::int32_t p : straw_patterns(s)) {
    row.set_bit(p, true);
  }
  return row;
}

chdl::BitVec PatternBank::lut_row_slice(std::int32_t s, int lo,
                                        int width) const {
  ATLANTIS_CHECK(lo >= 0 && width > 0, "bad LUT slice");
  chdl::BitVec row(width);
  for (const std::int32_t p : straw_patterns(s)) {
    if (p >= lo && p < lo + width) row.set_bit(p - lo, true);
  }
  return row;
}

double PatternBank::mean_patterns_per_straw() const {
  std::int64_t total = 0;
  for (const auto& list : straw_patterns_) {
    total += static_cast<std::int64_t>(list.size());
  }
  return static_cast<double>(total) /
         static_cast<double>(straw_patterns_.size());
}

}  // namespace atlantis::trt
