// ATLANTIS execution model of the TRT histogrammer.
//
// The hardware streams the detector image through the memory-resident
// LUT: one straw per clock per pass, where a pass covers as many patterns
// as the attached memory modules are wide ("706 straws can be processed
// simultaneously on a single ACB board equipped with 4 memory modules").
// Counters live in FPGA registers; after the scan the histogram is read
// back over PCI. Functionally the result is identical to the software
// reference; the value the model adds is the cycle/time account.
#pragma once

#include <cstdint>
#include <optional>

#include "core/driver.hpp"
#include "trt/histogram.hpp"
#include "util/units.hpp"

namespace atlantis::trt {

struct TrtHwConfig {
  double clock_mhz = 40.0;    // "design speed 40 MHz"
  int ram_width_bits = 176;   // total LUT width (176 per module)
  /// Full-scan mode streams every straw; otherwise only hit straws are
  /// pushed (requires a hit-list front-end).
  bool stream_all_straws = true;
  /// The paper's 2.7 ms extrapolation divides linearly by the width
  /// ratio; the real datapath quantizes to whole passes. `ideal_packing`
  /// selects the linear model (reported side by side in bench_e2).
  bool ideal_packing = false;
  int pipeline_depth = 8;
  /// Histogram read-back: counters drained one per clock.
  bool include_readout = true;
  /// Streams the event image with an asynchronous DMA that overlaps the
  /// LUT scan (the hardware consumes straws as they arrive), instead of
  /// paying image-in and compute back to back. Needs a driver; the
  /// sequential default reproduces the pre-timeline ledger exactly.
  bool overlap_io = false;
};

struct TrtHwResult {
  TrackHistogram histogram;
  std::uint64_t compute_cycles = 0;
  util::Picoseconds compute_time = 0;
  util::Picoseconds io_in_time = 0;    // event image DMA to the board
  util::Picoseconds readout_time = 0;  // histogram DMA back
  util::Picoseconds total_time = 0;
  double passes = 0.0;  // LUT accesses per straw
};

/// Runs the model. When `driver` is provided the event image and the
/// histogram read-back go through its DMA model (and its time ledger);
/// otherwise only compute time is reported.
TrtHwResult histogram_atlantis(const PatternBank& bank, const Event& ev,
                               const TrtHwConfig& cfg,
                               core::AtlantisDriver* driver = nullptr);

/// Software baselines.
///
/// The dense walk mirrors the hardware algorithm word by word — fetch
/// every straw's LUT row and scan it — which is what a direct C++ port
/// of the trigger looked like and what the paper's 35 ms measures.
ReferenceResult histogram_reference_dense(const PatternBank& bank,
                                          const Event& ev);

}  // namespace atlantis::trt
