#include "trt/trt_core.hpp"

#include <vector>

#include "chdl/builder.hpp"
#include "chdl/fsm.hpp"
#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::trt {

TrtCoreLayout build_trt_core(chdl::Design& d, const PatternBank& bank,
                             int counter_bits) {
  using chdl::Wire;
  const int straws = bank.geometry().straw_count();
  const int patterns = bank.pattern_count();
  ATLANTIS_CHECK(patterns > 0 && patterns <= 4096,
                 "pattern count unreasonable for a register-file core");
  ATLANTIS_CHECK(counter_bits >= 4 && counter_bits <= 16,
                 "counter width out of range");

  TrtCoreLayout layout;
  layout.straw_bits =
      util::bit_width_of(static_cast<std::uint64_t>(straws - 1));
  layout.counter_bits = counter_bits;
  layout.pattern_count = patterns;

  chdl::HostRegFile hrf(d, /*addr_bits=*/16, /*data_bits=*/32);

  // LUT ROM: one row per straw, one bit per pattern.
  std::vector<chdl::BitVec> rows;
  rows.reserve(static_cast<std::size_t>(straws));
  for (int s = 0; s < straws; ++s) rows.push_back(bank.lut_row(s));
  const int rom = d.add_rom("lut", std::move(rows));

  // Straw push pipeline: the write strobe launches a synchronous ROM
  // read; the row arrives one cycle later, qualified by valid_d1.
  const Wire push = hrf.write_strobe(0x01);
  const Wire clear = hrf.write_strobe(0x00);
  const Wire addr = d.slice(hrf.wdata(), 0, layout.straw_bits);
  const Wire row = d.ram_read(rom, addr, push);
  chdl::RegOpts vopts;
  const Wire valid_d1 = d.reg("valid_d1", push, vopts);

  // Per-pattern counters with increment-on-bit and synchronous clear.
  const Wire one = d.constant(counter_bits, 1);
  std::vector<Wire> counters(static_cast<std::size_t>(patterns));
  d.push_scope("hist");
  for (int p = 0; p < patterns; ++p) {
    const Wire inc = d.band(valid_d1, d.bit(row, p));
    chdl::RegOpts opts;
    opts.enable = inc;
    opts.reset = clear;
    const Wire q =
        d.reg_forward("cnt" + std::to_string(p), counter_bits, opts);
    d.reg_connect(q, d.add(q, one));
    counters[static_cast<std::size_t>(p)] = q;
    hrf.map_read(0x10 + static_cast<std::uint32_t>(p), q);
  }
  d.pop_scope();

  // Threshold comparator bank and found-track popcount.
  const Wire threshold = hrf.write_reg("threshold", 0x02, counter_bits);
  std::vector<Wire> above;
  above.reserve(static_cast<std::size_t>(patterns));
  for (int p = 0; p < patterns; ++p) {
    above.push_back(
        d.bnot(d.ult(counters[static_cast<std::size_t>(p)], threshold)));
  }
  const Wire found = chdl::adder_tree(d, above);
  hrf.map_read(0x03, found);
  hrf.map_read(0x04, d.constant(16, static_cast<std::uint64_t>(patterns)));

  // Readout sequencer: an FSM drains the histogram one counter per
  // clock through the scan mux.
  {
    d.push_scope("scan");
    const Wire start = hrf.write_strobe(0x05);
    const int idx_bits =
        util::bit_width_of(static_cast<std::uint64_t>(patterns - 1));
    chdl::RegOpts iopts;
    const Wire idx = d.reg_forward("idx", idx_bits, iopts);
    const Wire at_last = chdl::eq_const(
        d, idx, static_cast<std::uint64_t>(patterns - 1));

    chdl::Fsm fsm(d, "readout");
    const chdl::StateId acquire = fsm.state("acquire");
    const chdl::StateId scanning = fsm.state("scanning");
    const chdl::StateId done = fsm.state("done");
    fsm.transition(acquire, scanning, start);
    fsm.transition(scanning, acquire, clear);
    fsm.transition(scanning, done, at_last);
    fsm.transition(done, acquire, clear);
    fsm.build();

    // Index counts up while scanning, resets on start/clear.
    const Wire advancing = fsm.active(scanning);
    const Wire idx_next =
        d.mux(d.bor(start, clear), d.constant(idx_bits, 0),
              d.mux(advancing, d.add(idx, d.constant(idx_bits, 1)), idx));
    d.reg_connect(idx, idx_next);

    hrf.map_read(0x06, d.muxn(idx, counters));
    hrf.map_read(0x07, idx);
    hrf.map_read(0x08, fsm.encoded());
    d.pop_scope();
  }
  hrf.finish();
  return layout;
}

}  // namespace atlantis::trt
