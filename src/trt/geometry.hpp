// TRT detector geometry and pattern parametrization.
//
// §3.1: the transition radiation tracker delivers a 2-D image of 80,000
// pixels ("straws") at up to 100 kHz; the trigger looks for straight or
// curved tracks. We model the detector as L radial layers of S straws
// each (L*S = 80,000 by default) and a track pattern as the set of straws
// a parametrized trajectory crosses: one straw per layer, with position
//   s(l) = phi + slope*l + curvature*l^2  (mod S).
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace atlantis::trt {

struct DetectorGeometry {
  int layers = 100;
  int straws_per_layer = 800;  // 100 * 800 = 80,000 straws

  int straw_count() const { return layers * straws_per_layer; }

  int straw_id(int layer, int position) const {
    ATLANTIS_CHECK(layer >= 0 && layer < layers, "layer out of range");
    // Positions wrap around the barrel.
    int p = position % straws_per_layer;
    if (p < 0) p += straws_per_layer;
    return layer * straws_per_layer + p;
  }
};

/// Track parametrization in straw-position units.
struct TrackParams {
  double phi = 0.0;        // position in layer 0
  double slope = 0.0;      // straws per layer (stiff-track angle)
  double curvature = 0.0;  // quadratic term (momentum-dependent bend)
};

/// The straws a track crosses, one per layer.
std::vector<std::int32_t> track_straws(const DetectorGeometry& geo,
                                       const TrackParams& t);

}  // namespace atlantis::trt
