#include "trt/serve_adapter.hpp"

#include "util/bitops.hpp"

namespace atlantis::trt {

serve::JobSpec make_histogram_job(const PatternBank& bank, const Event& ev,
                                  const TrtHwConfig& cfg, std::string tenant,
                                  std::string config,
                                  util::Picoseconds arrival) {
  serve::JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = serve::JobKind::kTrtEvent;
  spec.config = std::move(config);
  spec.arrival = arrival;
  spec.work = [&bank, &ev, cfg]() {
    serve::JobOutcome out;
    const TrtHwResult r = histogram_atlantis(bank, ev, cfg, nullptr);
    const int threshold = default_threshold(bank.geometry());
    const auto tracks = r.histogram.tracks_above(threshold);
    out.checksum = serve::digest(r.histogram.counts);
    out.value = static_cast<double>(tracks.size());
    out.detail = std::to_string(tracks.size()) + " tracks";
    out.compute_time = r.compute_time;
    // Event image in (one bit per straw, packed), 16-bit counters out —
    // the same byte model histogram_atlantis applies when driven live.
    out.dma_in_bytes = util::ceil_div(
        static_cast<std::uint64_t>(bank.geometry().straw_count()), 8);
    out.dma_out_bytes = static_cast<std::uint64_t>(bank.pattern_count()) * 2;
    return out;
  };
  return spec;
}

}  // namespace atlantis::trt
