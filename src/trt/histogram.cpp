#include "trt/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace atlantis::trt {

std::vector<std::int32_t> TrackHistogram::tracks_above(int threshold) const {
  std::vector<std::int32_t> out;
  for (std::size_t p = 0; p < counts.size(); ++p) {
    if (counts[p] >= threshold) out.push_back(static_cast<std::int32_t>(p));
  }
  return out;
}

TrackFinderQuality score_tracks(const Event& ev,
                                const std::vector<std::int32_t>& found) {
  TrackFinderQuality q;
  q.true_tracks = static_cast<int>(ev.true_tracks.size());
  q.found_tracks = static_cast<int>(found.size());
  for (const std::int32_t p : found) {
    if (std::binary_search(ev.true_tracks.begin(), ev.true_tracks.end(), p)) {
      ++q.matched;
    }
  }
  return q;
}

ReferenceResult histogram_reference(const PatternBank& bank, const Event& ev) {
  ReferenceResult r;
  r.histogram.counts.assign(static_cast<std::size_t>(bank.pattern_count()), 0);
  double ops = 0.0;
  for (const std::int32_t s : ev.hits) {
    const auto& list = bank.straw_patterns(s);
    for (const std::int32_t p : list) {
      ++r.histogram.counts[static_cast<std::size_t>(p)];
    }
    // Per hit: loop control + load of the list header, then per entry a
    // load, an index computation and a read-modify-write increment (~3
    // simple ops on a late-90s x86 with the counter array missing cache).
    ops += 4.0 + 3.0 * static_cast<double>(list.size());
  }
  // Final threshold scan over the histogram.
  ops += 2.0 * static_cast<double>(bank.pattern_count());
  r.op_count = ops;
  return r;
}

int default_threshold(const DetectorGeometry& geo, double straw_efficiency) {
  // Expect efficiency*layers hits on a true track; place the cut at ~75%
  // of that to tolerate noise-free fluctuations.
  return static_cast<int>(
      std::floor(0.75 * straw_efficiency * static_cast<double>(geo.layers)));
}

}  // namespace atlantis::trt
