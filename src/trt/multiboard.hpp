// Multi-board TRT: the "2 ACB with 4 memory modules each" configuration
// of §3.4, modelled as an actual system rather than the paper's linear
// extrapolation.
//
// The pattern bank is sliced across boards (each board's memory modules
// hold its slice of the LUT columns); the event image is broadcast to
// all boards over the private backplane (every board needs every straw),
// boards histogram their slices in parallel, and the partial histograms
// are collected back over the backplane and concatenated. The model
// accounts for each phase separately, which is exactly where it diverges
// from the paper's "divide by the width ratio" estimate: broadcast and
// collection do not shrink with more boards.
#pragma once

#include <string>
#include <vector>

#include "core/system.hpp"
#include "trt/hwmodel.hpp"

namespace atlantis::util {
class WorkerPool;
}

namespace atlantis::trt {

struct MultiBoardConfig {
  int boards = 2;
  int modules_per_board = 4;   // 176 bit each
  double clock_mhz = 40.0;
  /// Event delivery: detector-fed boards receive the image over their
  /// own links in parallel with processing; host-fed boards pay the
  /// backplane broadcast up front.
  bool detector_fed = false;
  /// Worker pool for the functional histogramming; nullptr uses the
  /// shared pool. The result is pool-size invariant: fault draws happen
  /// on the scheduling thread only, never inside pool workers.
  util::WorkerPool* pool = nullptr;
};

struct MultiBoardResult {
  TrackHistogram histogram;     // functionally identical to the reference
  util::Picoseconds broadcast_time = 0;
  util::Picoseconds compute_time = 0;   // max over boards (parallel)
  util::Picoseconds collect_time = 0;   // partial-histogram merge
  util::Picoseconds total_time = 0;
  int patterns_per_board = 0;

  // --- graceful degradation --------------------------------------------
  /// True when at least one configured board was masked out: the
  /// surviving boards absorbed its pattern slice, so the histogram is
  /// still complete, but with less parallelism than configured.
  bool degraded = false;
  int active_boards = 0;              // boards that actually scanned
  std::vector<std::string> masked_boards;
  /// Per-run S-Link recovery (detector-fed): streams retransmitted after
  /// an injected LDERR, and the link time those retransmissions wasted.
  std::uint64_t slink_retransmits = 0;
  util::Picoseconds recovery_time = 0;
};

/// Runs the distributed trigger on `system`, which must contain at least
/// `cfg.boards` ACBs and one AIB (the event source feeding the
/// backplane). Throws util::Error otherwise — including when every
/// configured board has dropped out. Boards that suffer an injected
/// drop-out (now or in an earlier run) are masked and their slice is
/// redistributed over the survivors; the result is flagged degraded.
MultiBoardResult histogram_multiboard(const PatternBank& bank,
                                      const Event& ev,
                                      const MultiBoardConfig& cfg,
                                      core::AtlantisSystem& system);

}  // namespace atlantis::trt
