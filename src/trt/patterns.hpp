// Pattern bank and look-up table for the TRT trigger.
//
// "Predefined patterns are stored in a large look-up table (LUT) with
// every data bit representing one pattern. Each pixel in the input image
// contributes to a number of patterns, defined by the content of the
// LUT." (§3.1). The bank enumerates 240..2400+ track patterns over a
// parameter grid and provides both views of the membership relation:
// per-pattern straw lists and per-straw pattern lists (= the LUT rows).
#pragma once

#include <cstdint>
#include <vector>

#include "chdl/bitvec.hpp"
#include "trt/geometry.hpp"

namespace atlantis::trt {

class PatternBank {
 public:
  /// Enumerates `num_patterns` patterns over a phi x slope x curvature
  /// grid covering the barrel.
  PatternBank(const DetectorGeometry& geo, int num_patterns);

  const DetectorGeometry& geometry() const { return geo_; }
  int pattern_count() const { return static_cast<int>(patterns_.size()); }

  /// The straws pattern `p` crosses (one per layer).
  const std::vector<std::int32_t>& pattern_straws(int p) const {
    return patterns_.at(static_cast<std::size_t>(p));
  }
  const TrackParams& pattern_params(int p) const {
    return params_.at(static_cast<std::size_t>(p));
  }

  /// Patterns that straw `s` belongs to (the set bits of LUT row `s`).
  const std::vector<std::int32_t>& straw_patterns(std::int32_t s) const {
    return straw_patterns_.at(static_cast<std::size_t>(s));
  }

  /// LUT row for a straw as a bit vector of width pattern_count()
  /// (what the memory module stores at address `s`).
  chdl::BitVec lut_row(std::int32_t s) const;

  /// LUT row restricted to pattern slice [lo, lo+width) — one memory
  /// module's share in a multi-module configuration.
  chdl::BitVec lut_row_slice(std::int32_t s, int lo, int width) const;

  /// Average LUT-row population (patterns per straw) — the op count per
  /// hit of the software histogrammer.
  double mean_patterns_per_straw() const;

  /// Total LUT bits (= straws x patterns), the memory the modules hold.
  std::int64_t lut_bits() const {
    return static_cast<std::int64_t>(geo_.straw_count()) * pattern_count();
  }

 private:
  DetectorGeometry geo_;
  std::vector<std::vector<std::int32_t>> patterns_;       // pattern -> straws
  std::vector<TrackParams> params_;
  std::vector<std::vector<std::int32_t>> straw_patterns_; // straw -> patterns
};

}  // namespace atlantis::trt
