#include "trt/geometry.hpp"

#include <cmath>

namespace atlantis::trt {

std::vector<std::int32_t> track_straws(const DetectorGeometry& geo,
                                       const TrackParams& t) {
  std::vector<std::int32_t> straws;
  straws.reserve(static_cast<std::size_t>(geo.layers));
  for (int l = 0; l < geo.layers; ++l) {
    const double pos =
        t.phi + t.slope * l + t.curvature * static_cast<double>(l) * l;
    straws.push_back(
        geo.straw_id(l, static_cast<int>(std::lround(pos))));
  }
  return straws;
}

}  // namespace atlantis::trt
