#include "trt/hwmodel.hpp"

#include <cmath>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::trt {

TrtHwResult histogram_atlantis(const PatternBank& bank, const Event& ev,
                               const TrtHwConfig& cfg,
                               core::AtlantisDriver* driver) {
  ATLANTIS_CHECK(cfg.ram_width_bits > 0, "RAM width must be positive");
  TrtHwResult r;
  // Functional result: identical to the reference by construction — the
  // hardware computes the same histogram, pass by pass.
  r.histogram = histogram_reference(bank, ev).histogram;

  const auto straws =
      static_cast<std::uint64_t>(bank.geometry().straw_count());
  const auto hits = static_cast<std::uint64_t>(ev.hits.size());
  const std::uint64_t processed = cfg.stream_all_straws ? straws : hits;
  const double width = cfg.ram_width_bits;
  const double patterns = bank.pattern_count();

  if (cfg.ideal_packing) {
    r.passes = patterns / width;
  } else {
    r.passes = std::ceil(patterns / width);
  }
  double cycles = static_cast<double>(processed) * r.passes +
                  static_cast<double>(cfg.pipeline_depth);
  if (cfg.include_readout) {
    cycles += patterns;  // drain one counter per clock into the read FIFO
  }
  r.compute_cycles = static_cast<std::uint64_t>(std::llround(cycles));
  r.compute_time =
      static_cast<util::Picoseconds>(r.compute_cycles) *
      util::period_from_mhz(cfg.clock_mhz);

  if (driver != nullptr) {
    driver->set_design_clock(cfg.clock_mhz);
    const util::Picoseconds t0 = driver->elapsed();
    // Event image in: one bit per straw, packed.
    const std::uint64_t image_bytes = util::ceil_div(straws, 8);
    // Histogram out: 16-bit counters.
    const std::uint64_t hist_bytes =
        static_cast<std::uint64_t>(bank.pattern_count()) * 2;
    if (cfg.overlap_io) {
      // The scan consumes straws as the image streams in: the DMA
      // occupies the bus while the design clock runs, and the read-back
      // starts once both are done.
      driver->dma_write_async(image_bytes);
      r.io_in_time = driver->board()
                         .pci()
                         .transfer(hw::DmaDirection::kWrite, image_bytes)
                         .duration;
      driver->advance(r.compute_time);
      driver->wait();
      r.readout_time = driver->dma_read(hist_bytes).duration;
    } else {
      r.io_in_time = driver->dma_write(image_bytes).duration;
      r.readout_time = driver->dma_read(hist_bytes).duration;
      driver->advance(r.compute_time);
    }
    // End-to-end span as the timeline saw it: identical to the scalar
    // sum in the sequential case, max(io, compute) + readout when
    // overlapped, and queue-delay inclusive under bus contention.
    r.total_time = driver->elapsed() - t0;
  } else {
    r.total_time = r.io_in_time + r.compute_time + r.readout_time;
  }
  return r;
}

ReferenceResult histogram_reference_dense(const PatternBank& bank,
                                          const Event& ev) {
  ReferenceResult r;
  r.histogram.counts.assign(static_cast<std::size_t>(bank.pattern_count()), 0);
  const int straws = bank.geometry().straw_count();
  const int words_per_row = (bank.pattern_count() + 31) / 32;
  double ops = 0.0;
  for (int s = 0; s < straws; ++s) {
    // Row fetch + per-word test happen for every straw (the dense port
    // keeps the LUT in the same layout as the hardware's memory module).
    ops += 2.0 + 2.0 * static_cast<double>(words_per_row);
    if (ev.hit_mask[static_cast<std::size_t>(s)] == 0) continue;
    for (const std::int32_t p : bank.straw_patterns(s)) {
      ++r.histogram.counts[static_cast<std::size_t>(p)];
      ops += 3.0;  // bit isolate + index + increment
    }
  }
  ops += 2.0 * static_cast<double>(bank.pattern_count());
  r.op_count = ops;
  return r;
}

}  // namespace atlantis::trt
