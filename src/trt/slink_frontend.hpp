// Detector front end over S-Link.
//
// In the deployed system the TRT images arrive over S-Link from the
// readout buffers, not over host PCI — that is how the trigger escapes
// the I/O bottleneck §3.4 identifies for the coprocessor configuration,
// and what the ACB's external LVDS connectors are for ("to set up a
// downscaled or test system"). Events travel as fragments of hit-straw
// words; the budget calculator answers whether a link configuration
// sustains the experiment's 100 kHz repetition rate.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hw/slink.hpp"
#include "trt/events.hpp"

namespace atlantis::trt {

/// Sends one event as an S-Link fragment (one 32-bit word per hit straw).
/// Returns the number of link words accepted (hits + 2 framing words when
/// nothing is refused by flow control).
std::size_t send_event(hw::SlinkChannel& link, const Event& ev,
                       std::uint32_t event_id);

/// Receives one complete fragment, if available: (event id, hit list).
/// Returns nullopt when no complete fragment is buffered; throws on a
/// malformed stream (data outside a fragment, nested begin markers).
std::optional<std::pair<std::uint32_t, std::vector<std::int32_t>>>
receive_event(hw::SlinkChannel& link);

/// Bandwidth budget for a detector feed.
struct LinkBudget {
  double mbps_needed = 0.0;
  double mbps_per_link = 0.0;
  int links_needed = 0;

  bool feasible(int links_available) const {
    return links_needed <= links_available;
  }
};

/// `mean_hits` hit words per event at `event_rate_khz`, over S-Links at
/// `link_mhz` (32-bit words, one per link clock).
LinkBudget slink_budget(double mean_hits, double event_rate_khz,
                        double link_mhz = 40.0);

}  // namespace atlantis::trt
