#include "trt/events.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atlantis::trt {

EventGenerator::EventGenerator(const PatternBank& bank, EventParams params,
                               std::uint64_t seed)
    : bank_(bank), params_(params), rng_(seed) {
  ATLANTIS_CHECK(params.tracks >= 0, "negative track count");
  ATLANTIS_CHECK(params.straw_efficiency > 0.0 && params.straw_efficiency <= 1.0,
                 "straw efficiency out of range");
  ATLANTIS_CHECK(params.noise_occupancy >= 0.0 && params.noise_occupancy < 1.0,
                 "noise occupancy out of range");
}

Event EventGenerator::generate() {
  Event ev;
  const int straws = bank_.geometry().straw_count();
  ev.hit_mask.assign(static_cast<std::size_t>(straws), 0);

  // Plant true tracks.
  for (int t = 0; t < params_.tracks; ++t) {
    const auto p = static_cast<std::int32_t>(
        rng_.next_below(static_cast<std::uint64_t>(bank_.pattern_count())));
    ev.true_tracks.push_back(p);
    for (const std::int32_t s : bank_.pattern_straws(p)) {
      if (rng_.bernoulli(params_.straw_efficiency)) {
        ev.hit_mask[static_cast<std::size_t>(s)] = 1;
      }
    }
  }
  // Uniform noise.
  if (params_.noise_occupancy > 0.0) {
    for (int s = 0; s < straws; ++s) {
      if (rng_.bernoulli(params_.noise_occupancy)) {
        ev.hit_mask[static_cast<std::size_t>(s)] = 1;
      }
    }
  }
  for (int s = 0; s < straws; ++s) {
    if (ev.hit_mask[static_cast<std::size_t>(s)] != 0) {
      ev.hits.push_back(s);
    }
  }
  std::sort(ev.true_tracks.begin(), ev.true_tracks.end());
  ev.true_tracks.erase(
      std::unique(ev.true_tracks.begin(), ev.true_tracks.end()),
      ev.true_tracks.end());
  return ev;
}

}  // namespace atlantis::trt
