// CHDL gate-level TRT histogrammer core.
//
// This is the design an ACB FPGA would actually carry, built for reduced
// configurations so the cycle simulator stays fast: a LUT ROM addressed
// by straw id, one registered counter per pattern, a threshold comparator
// and a host register file. Tests drive it hit-by-hit through the
// HostInterface and check bit-exact agreement with the software
// reference — the CHDL "application as test bench" workflow.
//
// Host register map:
//   0x00 w   clear (any write zeroes the counters, aborts a scan)
//   0x01 w   straw id push (one straw per write, pipelined increment)
//   0x02 rw  threshold
//   0x03 r   number of patterns at or above threshold
//   0x04 r   pattern_count
//   0x05 w   start readout scan (the FSM-driven drain sequencer)
//   0x06 r   scan data: counter at the current scan index
//   0x07 r   scan index
//   0x08 r   scan state (0 acquire, 1 scanning, 2 done)
//   0x10+p r counter of pattern p (random access)
//
// The readout sequencer is a CHDL state machine (chdl::Fsm): a host
// strobe to 0x05 moves acquire->scan; the FSM advances one counter per
// clock through the read mux and parks in `done` until the next clear —
// the drain loop the execution model charges `pattern_count` cycles for.
#pragma once

#include <memory>

#include "chdl/design.hpp"
#include "trt/patterns.hpp"

namespace atlantis::trt {

struct TrtCoreLayout {
  int straw_bits = 0;
  int counter_bits = 8;
  int pattern_count = 0;
};

/// Builds the histogrammer for `bank` into `design`. The bank must be
/// small enough for per-pattern registers (<= 512 patterns is sensible
/// for simulation; the capacity check against the ORCA budget is what
/// bench_a4 exercises).
TrtCoreLayout build_trt_core(chdl::Design& design, const PatternBank& bank,
                             int counter_bits = 8);

}  // namespace atlantis::trt
