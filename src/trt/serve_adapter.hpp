// JobService adapter for the TRT trigger: one event block per job.
#pragma once

#include <string>

#include "serve/job.hpp"
#include "trt/hwmodel.hpp"

namespace atlantis::trt {

/// Builds a serving-layer job that histograms one event through the
/// ATLANTIS execution model. `bank` and `ev` are captured by reference
/// and must outlive the service run. The job's value is the number of
/// tracks above the default threshold; its checksum digests the full
/// histogram, so bit-identical results are one comparison.
serve::JobSpec make_histogram_job(const PatternBank& bank, const Event& ev,
                                  const TrtHwConfig& cfg, std::string tenant,
                                  std::string config,
                                  util::Picoseconds arrival = 0);

}  // namespace atlantis::trt
