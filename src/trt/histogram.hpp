// Track histogramming: the shared functional core and the software
// reference implementation (the "C++ implementation on a Pentium-II/300"
// side of the §3.4 comparison).
#pragma once

#include <cstdint>
#include <vector>

#include "trt/events.hpp"
#include "trt/patterns.hpp"

namespace atlantis::trt {

/// Result of histogramming one event.
struct TrackHistogram {
  std::vector<std::uint16_t> counts;  // per-pattern hit counters

  /// Patterns whose counter reaches `threshold` ("a track is considered
  /// valid if its value is above a predefined threshold").
  std::vector<std::int32_t> tracks_above(int threshold) const;
};

/// Quality of a found-track list against the planted truth.
struct TrackFinderQuality {
  int true_tracks = 0;
  int found_tracks = 0;
  int matched = 0;  // found tracks that are true
  double efficiency() const {
    return true_tracks ? static_cast<double>(matched) / true_tracks : 1.0;
  }
  double purity() const {
    return found_tracks ? static_cast<double>(matched) / found_tracks : 1.0;
  }
};

TrackFinderQuality score_tracks(const Event& ev,
                                const std::vector<std::int32_t>& found);

/// Software histogrammer. Walks each hit straw's pattern list and
/// increments the counters — the cache-hostile loop the paper timed at
/// 35 ms. Also reports the abstract operation count the host-CPU model
/// converts to time.
struct ReferenceResult {
  TrackHistogram histogram;
  double op_count = 0.0;  // simple ops: list walks + increments + overhead
};

ReferenceResult histogram_reference(const PatternBank& bank, const Event& ev);

/// Threshold heuristic: a track must light up most of its layers.
int default_threshold(const DetectorGeometry& geo,
                      double straw_efficiency = 0.95);

}  // namespace atlantis::trt
