// Synthetic TRT event generation.
//
// The paper's detector data (ATLAS LVL2 full-scan events) is not
// available; DESIGN.md records the substitution. An event is produced by
// picking true tracks from the pattern bank, firing their straws with a
// per-straw efficiency, and adding uniform noise occupancy — the same
// input statistics (80k straws, percent-level occupancy, O(10) tracks)
// that drive the LUT-histogramming datapath.
#pragma once

#include <cstdint>
#include <vector>

#include "trt/patterns.hpp"
#include "util/rng.hpp"

namespace atlantis::trt {

struct Event {
  std::vector<std::int32_t> hits;        // sorted straw ids, unique
  std::vector<std::uint8_t> hit_mask;    // straw -> 0/1
  std::vector<std::int32_t> true_tracks; // pattern ids planted
};

struct EventParams {
  int tracks = 10;               // true tracks per event
  double straw_efficiency = 0.95;
  double noise_occupancy = 0.02; // fraction of straws firing randomly
};

class EventGenerator {
 public:
  EventGenerator(const PatternBank& bank, EventParams params,
                 std::uint64_t seed = 0xA71A5ull);

  Event generate();

  const EventParams& params() const { return params_; }

 private:
  const PatternBank& bank_;
  EventParams params_;
  util::Rng rng_;
};

}  // namespace atlantis::trt
