#include "trt/slink_frontend.hpp"

#include <cmath>

#include "util/status.hpp"

namespace atlantis::trt {

std::size_t send_event(hw::SlinkChannel& link, const Event& ev,
                       std::uint32_t event_id) {
  std::vector<std::uint32_t> payload;
  payload.reserve(ev.hits.size());
  for (const std::int32_t s : ev.hits) {
    payload.push_back(static_cast<std::uint32_t>(s));
  }
  return link.send_fragment(event_id, payload);
}

std::optional<std::pair<std::uint32_t, std::vector<std::int32_t>>>
receive_event(hw::SlinkChannel& link) {
  // Peek-less scan: we consume words; a complete fragment must be
  // present, otherwise the consumed prefix is re-buffered by the caller
  // pattern (the trigger polls only when a fragment-complete interrupt
  // fired; here we conservatively require begin..end to be buffered).
  std::optional<std::uint32_t> event_id;
  std::vector<std::int32_t> hits;
  while (auto w = link.receive()) {
    if (w->control) {
      const std::uint32_t marker = w->payload & 0xFFF00000;
      const std::uint32_t id = w->payload & 0xFFFFF;
      if (marker == (hw::SlinkChannel::kBeginFragment & 0xFFF00000)) {
        if (event_id.has_value()) {
          throw util::Error("nested S-Link begin-fragment marker");
        }
        event_id = id;
        hits.clear();
      } else if (marker == (hw::SlinkChannel::kEndFragment & 0xFFF00000)) {
        if (!event_id.has_value() || *event_id != id) {
          throw util::Error("unmatched S-Link end-fragment marker");
        }
        return std::make_pair(*event_id, std::move(hits));
      } else {
        throw util::Error("unknown S-Link control word");
      }
    } else {
      if (!event_id.has_value()) {
        throw util::Error("S-Link data outside a fragment");
      }
      hits.push_back(static_cast<std::int32_t>(w->payload));
    }
  }
  if (event_id.has_value()) {
    throw util::Error("S-Link stream ended mid-fragment");
  }
  return std::nullopt;
}

LinkBudget slink_budget(double mean_hits, double event_rate_khz,
                        double link_mhz) {
  ATLANTIS_CHECK(mean_hits >= 0.0 && event_rate_khz > 0.0 && link_mhz > 0.0,
                 "invalid link budget parameters");
  LinkBudget b;
  const double words_per_event = mean_hits + 2.0;  // framing
  b.mbps_needed = words_per_event * 4.0 * event_rate_khz * 1e3 / 1e6;
  b.mbps_per_link = link_mhz * 4.0;
  b.links_needed =
      static_cast<int>(std::ceil(b.mbps_needed / b.mbps_per_link));
  return b;
}

}  // namespace atlantis::trt
