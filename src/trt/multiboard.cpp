#include "trt/multiboard.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"
#include "util/status.hpp"
#include "util/worker_pool.hpp"

namespace atlantis::trt {
namespace {

/// One board's functional work: histogram the pattern slice [lo, hi)
/// (the columns its memory modules hold) into counts[lo..hi). Each
/// straw's pattern list is sorted, so the slice is a contiguous range.
void histogram_slice(const PatternBank& bank, const Event& ev,
                     std::int32_t lo, std::int32_t hi,
                     std::uint16_t* counts) {
  for (const std::int32_t s : ev.hits) {
    const auto& list = bank.straw_patterns(s);
    const auto begin = std::lower_bound(list.begin(), list.end(), lo);
    const auto end = std::lower_bound(begin, list.end(), hi);
    for (auto it = begin; it != end; ++it) {
      ++counts[static_cast<std::size_t>(*it)];
    }
  }
}

}  // namespace

MultiBoardResult histogram_multiboard(const PatternBank& bank,
                                      const Event& ev,
                                      const MultiBoardConfig& cfg,
                                      core::AtlantisSystem& system) {
  ATLANTIS_CHECK(cfg.boards >= 1, "need at least one board");
  ATLANTIS_CHECK(cfg.modules_per_board >= 1 && cfg.modules_per_board <= 4,
                 "1..4 mezzanine modules per board");
  if (system.acb_count() < cfg.boards) {
    throw util::Error("system has " + std::to_string(system.acb_count()) +
                      " ACBs but the configuration needs " +
                      std::to_string(cfg.boards));
  }
  if (system.aib_count() < 1) {
    throw util::Error("event broadcast needs an AIB as backplane source");
  }

  MultiBoardResult r;

  // Board health: each configured board gets one drop-out opportunity per
  // run (drawn here, on the scheduling thread — never in pool workers, so
  // the outcome is independent of the worker-pool size). A board that
  // dropped out in an earlier run stays masked. Survivors absorb the dead
  // boards' pattern slices: the histogram stays complete, the run is
  // flagged degraded.
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(cfg.boards));
  for (int b = 0; b < cfg.boards; ++b) {
    core::AcbBoard& board = system.acb(b);
    board.draw_dropout();
    if (board.alive()) {
      alive.push_back(b);
    } else {
      r.degraded = true;
      r.masked_boards.push_back(board.name());
    }
  }
  if (alive.empty()) {
    throw util::Error("every configured ACB has dropped out; the TRT scan "
                      "has no surviving board");
  }
  const int active = static_cast<int>(alive.size());
  r.active_boards = active;

  r.patterns_per_board = static_cast<int>(util::ceil_div(
      static_cast<std::uint64_t>(bank.pattern_count()),
      static_cast<std::uint64_t>(active)));
  // Functional result: each surviving board histogramms its pattern slice
  // on the worker pool (the boards really do run concurrently); the
  // concatenation of the slices is exactly the reference histogram.
  r.histogram.counts.assign(static_cast<std::size_t>(bank.pattern_count()),
                            0);
  util::WorkerPool& pool =
      cfg.pool != nullptr ? *cfg.pool : util::WorkerPool::shared();
  pool.parallel_for(active, [&](int k) {
    const auto lo = static_cast<std::int32_t>(k * r.patterns_per_board);
    const auto hi = std::min<std::int32_t>(
        lo + r.patterns_per_board, bank.pattern_count());
    if (lo < hi) histogram_slice(bank, ev, lo, hi, r.histogram.counts.data());
  });

  core::Backplane& bp = system.backplane();
  const int src_slot = system.aib_slot(0);

  // The run is scheduled on the crate timeline: one track per surviving
  // board, the backplane channels and each board's design clock as shared
  // resources. Re-running on the same system appends after everything
  // already recorded, so the epoch is the current horizon.
  sim::Timeline& tl = system.timeline();
  const util::Picoseconds epoch = tl.horizon();
  std::vector<sim::TrackId> tracks;
  tracks.reserve(static_cast<std::size_t>(active));
  for (const int b : alive) {
    tracks.push_back(tl.add_track("trt/" + system.acb(b).name()));
  }

  // Per-run S-Link recovery accounting: the counters are lifetime, so
  // capture them before the streams are posted and report the delta.
  std::vector<std::uint64_t> retrans_before;
  std::vector<util::Picoseconds> retry_time_before;
  if (cfg.detector_fed) {
    for (const int b : alive) {
      hw::SlinkChannel& link = system.acb(b).slink();
      retrans_before.push_back(link.retransmissions());
      retry_time_before.push_back(tl.stats(link.resource()).retry_time);
    }
  }

  // Phase 1: image delivery. Host-fed boards get the full bit image over
  // their own backplane channel; with the default 4x32-bit configuration
  // up to four boards stream in parallel (more boards than channels
  // arbitrate FIFO on the shared channel). Detector-fed boards receive
  // the event over their own S-Links, overlapped with the scan.
  const std::uint64_t image_bytes = util::ceil_div(
      static_cast<std::uint64_t>(bank.geometry().straw_count()), 8);
  std::vector<util::Picoseconds> ready(static_cast<std::size_t>(active),
                                       epoch);
  if (!cfg.detector_fed) {
    util::Picoseconds last_arrival = epoch;
    for (int k = 0; k < active; ++k) {
      const int b = alive[static_cast<std::size_t>(k)];
      const int channel = k % bp.channel_count();
      const sim::Transaction& txn =
          bp.post_transfer(tracks[static_cast<std::size_t>(k)], src_slot,
                           system.acb_slot(b), channel, image_bytes, epoch,
                           "image broadcast");
      ready[static_cast<std::size_t>(k)] = txn.end;
      last_arrival = std::max(last_arrival, txn.end);
    }
    r.broadcast_time = last_arrival - epoch;
  }

  // Phase 2: parallel histogramming of the slices, each board starting
  // as soon as its image arrived.
  std::vector<util::Picoseconds> done(static_cast<std::size_t>(active),
                                      epoch);
  for (int k = 0; k < active; ++k) {
    const int b = alive[static_cast<std::size_t>(k)];
    TrtHwConfig board_cfg;
    board_cfg.clock_mhz = cfg.clock_mhz;
    board_cfg.ram_width_bits = 176 * cfg.modules_per_board;
    board_cfg.include_readout = false;  // collection is phase 3
    // Build a per-board cycle count for its slice of the patterns.
    const auto straws =
        static_cast<std::uint64_t>(bank.geometry().straw_count());
    const double passes = std::ceil(static_cast<double>(r.patterns_per_board) /
                                    board_cfg.ram_width_bits);
    const auto cycles = static_cast<std::uint64_t>(
        static_cast<double>(straws) * passes + board_cfg.pipeline_depth);
    const util::Picoseconds t =
        static_cast<util::Picoseconds>(cycles) *
        util::period_from_mhz(cfg.clock_mhz);
    r.compute_time = std::max(r.compute_time, t);
    const sim::Transaction& scan = tl.post(
        tracks[static_cast<std::size_t>(k)], sim::TxnKind::kCompute,
        "scan slice " + std::to_string(k),
        system.acb(b).compute_resource(),
        ready[static_cast<std::size_t>(k)], t);
    done[static_cast<std::size_t>(k)] = scan.end;
    if (cfg.detector_fed) {
      // The S-Link stream (begin marker, hit words, end marker) occupies
      // the board's link while the scan consumes it; the board is done
      // when the slower of the two finishes. The link clock matches the
      // design clock, so with full-image streaming the scan dominates.
      // An injected LDERR burst turns the stream into two posts (the
      // corrupted pass and its retransmission), pushing the board's
      // completion out by the wasted link time.
      const sim::Transaction& stream =
          system.acb(b).slink().post_stream(
              tracks[static_cast<std::size_t>(k)],
              static_cast<std::uint64_t>(ev.hits.size()) + 2, epoch,
              "detector feed");
      done[static_cast<std::size_t>(k)] =
          std::max(done[static_cast<std::size_t>(k)], stream.end);
    }
  }

  // Phase 3: collect the partial histograms (16-bit counters) back over
  // the backplane, serialized onto one channel at the collector — the
  // timeline's FIFO arbitration on channel 0 is that serialization.
  const std::uint64_t hist_bytes =
      static_cast<std::uint64_t>(r.patterns_per_board) * 2;
  util::Picoseconds finish = epoch;
  for (int k = 0; k < active; ++k) {
    const int b = alive[static_cast<std::size_t>(k)];
    const sim::Transaction& txn = bp.post_transfer(
        tracks[static_cast<std::size_t>(k)], system.acb_slot(b), src_slot, 0,
        hist_bytes, done[static_cast<std::size_t>(k)],
        "collect slice " + std::to_string(k));
    r.collect_time += txn.duration();
    finish = std::max(finish, txn.end);
  }

  if (cfg.detector_fed) {
    for (int k = 0; k < active; ++k) {
      hw::SlinkChannel& link =
          system.acb(alive[static_cast<std::size_t>(k)]).slink();
      r.slink_retransmits += link.retransmissions() -
                             retrans_before[static_cast<std::size_t>(k)];
      r.recovery_time += tl.stats(link.resource()).retry_time -
                         retry_time_before[static_cast<std::size_t>(k)];
    }
  }

  // End-to-end span of the whole schedule, including any pipelining of
  // early collections under late scans the phase sums cannot see.
  r.total_time = finish - epoch;
  return r;
}

}  // namespace atlantis::trt
