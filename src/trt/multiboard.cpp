#include "trt/multiboard.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::trt {

MultiBoardResult histogram_multiboard(const PatternBank& bank,
                                      const Event& ev,
                                      const MultiBoardConfig& cfg,
                                      core::AtlantisSystem& system) {
  ATLANTIS_CHECK(cfg.boards >= 1, "need at least one board");
  ATLANTIS_CHECK(cfg.modules_per_board >= 1 && cfg.modules_per_board <= 4,
                 "1..4 mezzanine modules per board");
  if (system.acb_count() < cfg.boards) {
    throw util::Error("system has " + std::to_string(system.acb_count()) +
                      " ACBs but the configuration needs " +
                      std::to_string(cfg.boards));
  }
  if (system.aib_count() < 1) {
    throw util::Error("event broadcast needs an AIB as backplane source");
  }

  MultiBoardResult r;
  // Functional result: each board histogramms its pattern slice; the
  // concatenation is exactly the reference histogram.
  r.histogram = histogram_reference(bank, ev).histogram;
  r.patterns_per_board = static_cast<int>(util::ceil_div(
      static_cast<std::uint64_t>(bank.pattern_count()),
      static_cast<std::uint64_t>(cfg.boards)));

  core::Backplane& bp = system.backplane();
  const int src_slot = system.aib_slot(0);

  // Phase 1: image broadcast. Each board gets the full bit image over
  // its own backplane channel; with the default 4x32-bit configuration
  // up to four boards stream in parallel, so the phase costs the
  // slowest (furthest) transfer.
  const std::uint64_t image_bytes = util::ceil_div(
      static_cast<std::uint64_t>(bank.geometry().straw_count()), 8);
  if (!cfg.detector_fed) {
    for (int b = 0; b < cfg.boards; ++b) {
      const int channel = b % bp.channel_count();
      r.broadcast_time =
          std::max(r.broadcast_time,
                   bp.transfer(src_slot, system.acb_slot(b), channel,
                               image_bytes));
    }
  }

  // Phase 2: parallel histogramming of the slices.
  for (int b = 0; b < cfg.boards; ++b) {
    TrtHwConfig board_cfg;
    board_cfg.clock_mhz = cfg.clock_mhz;
    board_cfg.ram_width_bits = 176 * cfg.modules_per_board;
    board_cfg.include_readout = false;  // collection is phase 3
    // Build a per-board cycle count for its slice of the patterns.
    const auto straws =
        static_cast<std::uint64_t>(bank.geometry().straw_count());
    const double passes = std::ceil(static_cast<double>(r.patterns_per_board) /
                                    board_cfg.ram_width_bits);
    const auto cycles = static_cast<std::uint64_t>(
        static_cast<double>(straws) * passes + board_cfg.pipeline_depth);
    const util::Picoseconds t =
        static_cast<util::Picoseconds>(cycles) *
        util::period_from_mhz(cfg.clock_mhz);
    r.compute_time = std::max(r.compute_time, t);
  }

  // Phase 3: collect the partial histograms (16-bit counters) back over
  // the backplane, serialized onto one channel at the collector.
  const std::uint64_t hist_bytes =
      static_cast<std::uint64_t>(r.patterns_per_board) * 2;
  for (int b = 0; b < cfg.boards; ++b) {
    r.collect_time +=
        bp.transfer(system.acb_slot(b), src_slot, 0, hist_bytes);
  }

  r.total_time = r.broadcast_time + r.compute_time + r.collect_time;
  return r;
}

}  // namespace atlantis::trt
