#include "trt/multiboard.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"
#include "util/status.hpp"
#include "util/worker_pool.hpp"

namespace atlantis::trt {
namespace {

/// One board's functional work: histogram the pattern slice [lo, hi)
/// (the columns its memory modules hold) into counts[lo..hi). Each
/// straw's pattern list is sorted, so the slice is a contiguous range.
void histogram_slice(const PatternBank& bank, const Event& ev,
                     std::int32_t lo, std::int32_t hi,
                     std::uint16_t* counts) {
  for (const std::int32_t s : ev.hits) {
    const auto& list = bank.straw_patterns(s);
    const auto begin = std::lower_bound(list.begin(), list.end(), lo);
    const auto end = std::lower_bound(begin, list.end(), hi);
    for (auto it = begin; it != end; ++it) {
      ++counts[static_cast<std::size_t>(*it)];
    }
  }
}

}  // namespace

MultiBoardResult histogram_multiboard(const PatternBank& bank,
                                      const Event& ev,
                                      const MultiBoardConfig& cfg,
                                      core::AtlantisSystem& system) {
  ATLANTIS_CHECK(cfg.boards >= 1, "need at least one board");
  ATLANTIS_CHECK(cfg.modules_per_board >= 1 && cfg.modules_per_board <= 4,
                 "1..4 mezzanine modules per board");
  if (system.acb_count() < cfg.boards) {
    throw util::Error("system has " + std::to_string(system.acb_count()) +
                      " ACBs but the configuration needs " +
                      std::to_string(cfg.boards));
  }
  if (system.aib_count() < 1) {
    throw util::Error("event broadcast needs an AIB as backplane source");
  }

  MultiBoardResult r;
  r.patterns_per_board = static_cast<int>(util::ceil_div(
      static_cast<std::uint64_t>(bank.pattern_count()),
      static_cast<std::uint64_t>(cfg.boards)));
  // Functional result: each board histogramms its pattern slice on the
  // shared worker pool (the boards really do run concurrently); the
  // concatenation of the slices is exactly the reference histogram.
  r.histogram.counts.assign(static_cast<std::size_t>(bank.pattern_count()),
                            0);
  util::WorkerPool::shared().parallel_for(cfg.boards, [&](int b) {
    const auto lo = static_cast<std::int32_t>(b * r.patterns_per_board);
    const auto hi = std::min<std::int32_t>(
        lo + r.patterns_per_board, bank.pattern_count());
    if (lo < hi) histogram_slice(bank, ev, lo, hi, r.histogram.counts.data());
  });

  core::Backplane& bp = system.backplane();
  const int src_slot = system.aib_slot(0);

  // Phase 1: image broadcast. Each board gets the full bit image over
  // its own backplane channel; with the default 4x32-bit configuration
  // up to four boards stream in parallel, so the phase costs the
  // slowest (furthest) transfer.
  const std::uint64_t image_bytes = util::ceil_div(
      static_cast<std::uint64_t>(bank.geometry().straw_count()), 8);
  if (!cfg.detector_fed) {
    for (int b = 0; b < cfg.boards; ++b) {
      const int channel = b % bp.channel_count();
      r.broadcast_time =
          std::max(r.broadcast_time,
                   bp.transfer(src_slot, system.acb_slot(b), channel,
                               image_bytes));
    }
  }

  // Phase 2: parallel histogramming of the slices.
  for (int b = 0; b < cfg.boards; ++b) {
    TrtHwConfig board_cfg;
    board_cfg.clock_mhz = cfg.clock_mhz;
    board_cfg.ram_width_bits = 176 * cfg.modules_per_board;
    board_cfg.include_readout = false;  // collection is phase 3
    // Build a per-board cycle count for its slice of the patterns.
    const auto straws =
        static_cast<std::uint64_t>(bank.geometry().straw_count());
    const double passes = std::ceil(static_cast<double>(r.patterns_per_board) /
                                    board_cfg.ram_width_bits);
    const auto cycles = static_cast<std::uint64_t>(
        static_cast<double>(straws) * passes + board_cfg.pipeline_depth);
    const util::Picoseconds t =
        static_cast<util::Picoseconds>(cycles) *
        util::period_from_mhz(cfg.clock_mhz);
    r.compute_time = std::max(r.compute_time, t);
  }

  // Phase 3: collect the partial histograms (16-bit counters) back over
  // the backplane, serialized onto one channel at the collector.
  const std::uint64_t hist_bytes =
      static_cast<std::uint64_t>(r.patterns_per_board) * 2;
  for (int b = 0; b < cfg.boards; ++b) {
    r.collect_time +=
        bp.transfer(system.acb_slot(b), src_slot, 0, hist_bytes);
  }

  r.total_time = r.broadcast_time + r.compute_time + r.collect_time;
  return r;
}

}  // namespace atlantis::trt
