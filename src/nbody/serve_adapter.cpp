#include "nbody/serve_adapter.hpp"

#include <bit>
#include <cstdint>
#include <vector>

namespace atlantis::nbody {

serve::JobSpec make_integrate_job(ParticleSet particles, double dt, int steps,
                                  ForcePipelineConfig cfg, std::string tenant,
                                  std::string config,
                                  util::Picoseconds arrival) {
  serve::JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = serve::JobKind::kNbodyStep;
  spec.config = std::move(config);
  spec.arrival = arrival;
  spec.work = [particles = std::move(particles), dt, steps, cfg]() {
    serve::JobOutcome out;
    ParticleSet local = particles;  // keep the functor re-invocable
    util::Picoseconds pipeline_time = 0;
    const ForceEngine engine = [&cfg,
                                &pipeline_time](const ParticleSet& ps) {
      ForcePipelineResult fr = accel_pipeline(ps, cfg);
      pipeline_time += fr.time;
      return fr.accel;
    };
    const double drift =
        integrate(local, dt, steps, engine, cfg.softening);
    std::vector<std::uint64_t> bits;
    bits.reserve(local.size() * 3);
    for (const Particle& p : local) {
      bits.push_back(std::bit_cast<std::uint64_t>(p.pos.x));
      bits.push_back(std::bit_cast<std::uint64_t>(p.pos.y));
      bits.push_back(std::bit_cast<std::uint64_t>(p.pos.z));
    }
    out.checksum = serve::digest(bits);
    out.value = drift;
    out.detail = std::to_string(local.size()) + " particles, " +
                 std::to_string(steps) + " steps";
    out.compute_time = pipeline_time;
    // Phase space in, phase space out: pos + vel + mass as doubles.
    const std::uint64_t bytes = local.size() * 7 * sizeof(double);
    out.dma_in_bytes = bytes;
    out.dma_out_bytes = bytes;
    return out;
  };
  return spec;
}

}  // namespace atlantis::nbody
