// Plummer-sphere initial conditions.
//
// The standard collisional-cluster model (the [8] reference simulates
// 10,000 particles past core collapse starts from exactly this profile).
// Positions follow the Plummer density; velocities are drawn from the
// local escape-speed distribution by von Neumann rejection (Aarseth,
// Henon & Wielen 1974). Units: G = M = 1, virial radius scaling.
#pragma once

#include <cstdint>

#include "nbody/particle.hpp"

namespace atlantis::nbody {

ParticleSet make_plummer(int n, std::uint64_t seed = 0x9B0D7);

}  // namespace atlantis::nbody
