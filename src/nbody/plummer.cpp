#include "nbody/plummer.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace atlantis::nbody {

ParticleSet make_plummer(int n, std::uint64_t seed) {
  ATLANTIS_CHECK(n > 0, "need at least one particle");
  util::Rng rng(seed);
  ParticleSet particles(static_cast<std::size_t>(n));
  const double mass = 1.0 / n;

  Vec3d com{};
  Vec3d cov{};
  for (auto& p : particles) {
    p.mass = mass;
    // Radius from the inverse cumulative mass profile.
    const double m = rng.uniform(0.05, 0.95);  // avoid extreme outliers
    const double r = 1.0 / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
    // Isotropic direction.
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(0.0, 2.0 * M_PI);
    const double s = std::sqrt(1.0 - z * z);
    p.pos = {r * s * std::cos(phi), r * s * std::sin(phi), r * z};
    // Velocity via rejection from q^2 (1-q^2)^(7/2).
    double q = 0.0;
    for (;;) {
      q = rng.uniform(0.0, 1.0);
      const double g = q * q * std::pow(1.0 - q * q, 3.5);
      if (rng.uniform(0.0, 0.1) < g) break;
    }
    const double vesc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    const double v = q * vesc;
    const double vz = rng.uniform(-1.0, 1.0);
    const double vphi = rng.uniform(0.0, 2.0 * M_PI);
    const double vs = std::sqrt(1.0 - vz * vz);
    p.vel = {v * vs * std::cos(vphi), v * vs * std::sin(vphi), v * vz};
    com += p.pos * mass;
    cov += p.vel * mass;
  }
  // Centre-of-mass correction.
  for (auto& p : particles) {
    p.pos = p.pos - com;
    p.vel = p.vel - cov;
  }
  return particles;
}

}  // namespace atlantis::nbody
