// Force evaluation: IEEE-double reference and the reduced-precision
// FPGA pipeline.
//
// The FPGA force unit is the GRAPE-style pair pipeline: for each (i, j)
// pair it computes dx, r^2 = dx.dx + eps^2, r^-3 via reciprocal square
// root, and accumulates m_j * r^-3 * dx — about 20 floating-point
// operations per pair, one pair per clock once the pipeline is full.
// Arithmetic runs in a configurable CFloat format so the 18-bit precision
// of the 1995 Xilinx results, the 24-bit middle ground and full single
// precision can all be evaluated for accuracy and resource cost.
#pragma once

#include <vector>

#include "nbody/particle.hpp"
#include "util/cfloat.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace atlantis::nbody {

/// Operations per pipeline pair (3 sub, 3 mul + 3 add for r^2, rsqrt
/// counted as 4, 1 add for eps, 3 mul + 3 add for the accumulation,
/// plus the m_j scale).
inline constexpr int kFlopsPerPair = 20;

/// IEEE-double direct summation (the workstation baseline and the
/// accuracy oracle).
std::vector<Vec3d> accel_reference(const ParticleSet& particles,
                                   double softening);

struct ForcePipelineConfig {
  util::CFloatFormat format = util::kFloat18;
  double clock_mhz = 25.0;  // Enable++-class pipelines ran 20-40 MHz
  int pipeline_depth = 40;  // stages from dx to accumulation
  int pipelines = 1;        // parallel force units on the FPGA(s)
  double softening = 0.05;
};

struct ForcePipelineResult {
  std::vector<Vec3d> accel;  // converted back to double for analysis
  std::uint64_t pairs = 0;
  std::uint64_t cycles = 0;
  util::Picoseconds time = 0;
  /// Equivalent MFLOP/s of the pipeline at the configured clock.
  double mflops() const {
    return time > 0 ? static_cast<double>(pairs) * kFlopsPerPair /
                          util::ps_to_s(time) / 1e6
                    : 0.0;
  }
  double pairs_per_second() const {
    return time > 0 ? static_cast<double>(pairs) / util::ps_to_s(time) : 0.0;
  }
};

/// Runs the bit-accurate reduced-precision pipeline over all pairs.
ForcePipelineResult accel_pipeline(const ParticleSet& particles,
                                   const ForcePipelineConfig& cfg);

/// Relative acceleration error of `test` against `ref` (per particle:
/// |a_test - a_ref| / |a_ref|).
util::Accumulator accel_error(const std::vector<Vec3d>& ref,
                              const std::vector<Vec3d>& test);

}  // namespace atlantis::nbody
