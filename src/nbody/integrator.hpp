// Leapfrog (kick-drift-kick) integrator over a pluggable force engine,
// used by the astronomy example and the energy-conservation tests.
#pragma once

#include <functional>

#include "nbody/particle.hpp"

namespace atlantis::nbody {

using ForceEngine =
    std::function<std::vector<Vec3d>(const ParticleSet&)>;

/// Advances the system by one step of size dt.
void leapfrog_step(ParticleSet& particles, double dt,
                   const ForceEngine& engine);

/// Advances `steps` steps; returns the relative energy drift
/// |E_end - E_start| / |E_start|.
double integrate(ParticleSet& particles, double dt, int steps,
                 const ForceEngine& engine, double softening);

}  // namespace atlantis::nbody
