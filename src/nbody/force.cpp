#include "nbody/force.hpp"

#include <cmath>

#include "util/status.hpp"

namespace atlantis::nbody {

std::vector<Vec3d> accel_reference(const ParticleSet& particles,
                                   double softening) {
  const std::size_t n = particles.size();
  std::vector<Vec3d> acc(n);
  const double eps2 = softening * softening;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3d a{};
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Vec3d d = particles[j].pos - particles[i].pos;
      const double r2 = d.dot(d) + eps2;
      const double inv_r3 = 1.0 / (r2 * std::sqrt(r2));
      a += d * (particles[j].mass * inv_r3);
    }
    acc[i] = a;
  }
  return acc;
}

ForcePipelineResult accel_pipeline(const ParticleSet& particles,
                                   const ForcePipelineConfig& cfg) {
  using util::CFloat;
  ATLANTIS_CHECK(cfg.pipelines >= 1, "need at least one pipeline");
  const auto& fmt = cfg.format;
  const std::size_t n = particles.size();

  // Load phase: host converts coordinates into the pipeline format once.
  struct P {
    CFloat x, y, z, m;
  };
  std::vector<P> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = {CFloat::from_double(particles[i].pos.x, fmt),
            CFloat::from_double(particles[i].pos.y, fmt),
            CFloat::from_double(particles[i].pos.z, fmt),
            CFloat::from_double(particles[i].mass, fmt)};
  }
  const CFloat eps2 =
      CFloat::from_double(cfg.softening * cfg.softening, fmt);

  ForcePipelineResult r;
  r.accel.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    CFloat ax = CFloat::from_double(0.0, fmt);
    CFloat ay = ax, az = ax;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      ++r.pairs;
      const CFloat dx = p[j].x - p[i].x;
      const CFloat dy = p[j].y - p[i].y;
      const CFloat dz = p[j].z - p[i].z;
      const CFloat r2 = ((dx * dx) + (dy * dy)) + ((dz * dz) + eps2);
      const CFloat inv_r = CFloat::rsqrt(r2);
      const CFloat inv_r3 = (inv_r * inv_r) * inv_r;
      const CFloat s = p[j].m * inv_r3;
      ax = ax + s * dx;
      ay = ay + s * dy;
      az = az + s * dz;
    }
    r.accel[i] = {ax.to_double(), ay.to_double(), az.to_double()};
  }

  // Timing: one pair per clock per pipeline plus a fill per i-particle
  // (the accumulator drains before the next i starts).
  r.cycles = r.pairs / static_cast<std::uint64_t>(cfg.pipelines) +
             n * static_cast<std::uint64_t>(cfg.pipeline_depth);
  r.time = static_cast<util::Picoseconds>(r.cycles) *
           util::period_from_mhz(cfg.clock_mhz);
  return r;
}

util::Accumulator accel_error(const std::vector<Vec3d>& ref,
                              const std::vector<Vec3d>& test) {
  ATLANTIS_CHECK(ref.size() == test.size(), "size mismatch");
  util::Accumulator acc;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double mag = ref[i].norm();
    if (mag == 0.0) continue;
    acc.add((test[i] - ref[i]).norm() / mag);
  }
  return acc;
}

}  // namespace atlantis::nbody
