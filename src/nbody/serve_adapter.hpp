// JobService adapter for N-body: one integration chunk per job.
#pragma once

#include <string>

#include "nbody/force.hpp"
#include "nbody/integrator.hpp"
#include "serve/job.hpp"

namespace atlantis::nbody {

/// Builds a serving-layer job that advances one particle set `steps`
/// leapfrog steps through the reduced-precision force pipeline. The
/// particles are captured by value (the job owns its chunk), so many
/// independent systems — or disjoint chunks of a big one — serve
/// concurrently. The value is the relative energy drift; the checksum
/// digests the final positions bit for bit.
serve::JobSpec make_integrate_job(ParticleSet particles, double dt, int steps,
                                  ForcePipelineConfig cfg, std::string tenant,
                                  std::string config,
                                  util::Picoseconds arrival = 0);

}  // namespace atlantis::nbody
