// N-body primitives: particles and phase-space vectors.
//
// §3.3: direct collisional N-body simulation (Spurzem & Aarseth style)
// needs Tera-FLOP force evaluation and was traditionally accelerated by
// GRAPE ASICs; the paper investigates the force sub-task on FPGAs.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace atlantis::nbody {

struct Vec3d {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3d operator+(const Vec3d& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3d operator-(const Vec3d& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3d operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3d& operator+=(const Vec3d& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  double dot(const Vec3d& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const { return std::sqrt(dot(*this)); }
};

struct Particle {
  Vec3d pos;
  Vec3d vel;
  double mass = 1.0;
};

using ParticleSet = std::vector<Particle>;

/// Total energy (kinetic + pairwise potential with softening) — the
/// integrator conservation check.
double total_energy(const ParticleSet& particles, double softening);

}  // namespace atlantis::nbody
