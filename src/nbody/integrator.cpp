#include "nbody/integrator.hpp"

#include <cmath>

#include "util/status.hpp"

namespace atlantis::nbody {

double total_energy(const ParticleSet& particles, double softening) {
  const std::size_t n = particles.size();
  double kinetic = 0.0;
  double potential = 0.0;
  const double eps2 = softening * softening;
  for (std::size_t i = 0; i < n; ++i) {
    kinetic += 0.5 * particles[i].mass * particles[i].vel.dot(particles[i].vel);
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3d d = particles[j].pos - particles[i].pos;
      potential -= particles[i].mass * particles[j].mass /
                   std::sqrt(d.dot(d) + eps2);
    }
  }
  return kinetic + potential;
}

void leapfrog_step(ParticleSet& particles, double dt,
                   const ForceEngine& engine) {
  const std::vector<Vec3d> a0 = engine(particles);
  ATLANTIS_CHECK(a0.size() == particles.size(), "force engine size mismatch");
  // Kick-drift.
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i].vel += a0[i] * (0.5 * dt);
    particles[i].pos += particles[i].vel * dt;
  }
  // Second kick with the updated positions.
  const std::vector<Vec3d> a1 = engine(particles);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i].vel += a1[i] * (0.5 * dt);
  }
}

double integrate(ParticleSet& particles, double dt, int steps,
                 const ForceEngine& engine, double softening) {
  const double e0 = total_energy(particles, softening);
  for (int s = 0; s < steps; ++s) {
    leapfrog_step(particles, dt, engine);
  }
  const double e1 = total_energy(particles, softening);
  return e0 != 0.0 ? std::fabs((e1 - e0) / e0) : std::fabs(e1 - e0);
}

}  // namespace atlantis::nbody
