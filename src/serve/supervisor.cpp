#include "serve/supervisor.hpp"

#include <algorithm>

#include "core/system.hpp"
#include "sim/fault.hpp"
#include "sim/snapshot.hpp"
#include "util/status.hpp"

namespace atlantis::serve {
namespace {

std::uint64_t sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : 0;
}

bool transient(util::ErrorCode code) {
  switch (code) {
    case util::ErrorCode::kDmaStall:
    case util::ErrorCode::kDmaAbort:
    case util::ErrorCode::kBoardDead:
    case util::ErrorCode::kTimeout:
    case util::ErrorCode::kRetriesExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* board_condition_name(BoardCondition c) {
  switch (c) {
    case BoardCondition::kActive: return "active";
    case BoardCondition::kQuarantined: return "quarantined";
    case BoardCondition::kProbation: return "probation";
    case BoardCondition::kDead: return "dead";
  }
  return "unknown";
}

Supervisor::Supervisor(JobService& service, SupervisorOptions options)
    : service_(service), options_(options) {
  ATLANTIS_CHECK(options_.dispatches_per_tick >= 1,
                 "the service must make progress every tick");
  crash_site_ = "serve/" + service_.system().name();
  const sim::FaultInjector* inj = service_.system().fault_injector();
  const std::uint64_t seed = inj != nullptr ? inj->plan().seed : 0;
  boards_.resize(service_.board_count());
  for (int i = 0; i < service_.board_count(); ++i) {
    BoardSupervision& b = boards_[static_cast<std::size_t>(i)];
    const std::string name = service_.system().acb(i).name();
    b.reconfig = std::make_unique<CircuitBreaker>(options_.reconfig_breaker,
                                                  "reconfig/" + name, seed);
    b.dma = std::make_unique<CircuitBreaker>(options_.dma_breaker,
                                             "dma/" + name, seed);
    if (service_.board_dead(i)) {
      b.condition = BoardCondition::kDead;
      mark_down(b);
    } else if (service_.board_quarantined(i)) {
      b.condition = BoardCondition::kQuarantined;
      mark_down(b);
    }
  }
  rebaseline();
}

void Supervisor::set_spare(JobService* spare) {
  spare_ = spare;
  service_.set_migration_target(spare);
}

util::Picoseconds Supervisor::now() const {
  return service_.system().timeline().horizon();
}

Supervisor::CounterBase Supervisor::sample(
    int board_index, const core::HealthProbe& probe) const {
  CounterBase base;
  base.probe = probe;
  const core::AtlantisDriver& drv = service_.driver(board_index);
  base.dma_faults = drv.dma_faults();
  base.dma_retries = drv.dma_retries();
  base.config_retries = drv.config_retries();
  const core::TaskSwitcher& sw = service_.switcher(board_index);
  base.reconfig_retries = sw.reconfig_retries();
  base.switches = sw.switch_count();
  base.scrubs = sw.scrub_count();
  return base;
}

HealthDelta Supervisor::diff(const CounterBase& base, const CounterBase& cur,
                             bool dropped) const {
  const core::SelfTestHealth& b = base.probe.counters;
  const core::SelfTestHealth& c = cur.probe.counters;
  HealthDelta d;
  d.dma_faults = sub(cur.dma_faults, base.dma_faults);
  d.dma_retries = sub(cur.dma_retries, base.dma_retries);
  d.reconfig_retries = sub(cur.reconfig_retries, base.reconfig_retries) +
                       sub(cur.config_retries, base.config_retries);
  d.crc_failures = sub(c.crc_failures, b.crc_failures);
  d.config_upsets = sub(c.config_upsets, b.config_upsets);
  d.slink_errors = sub(c.slink_errors, b.slink_errors) +
                   sub(c.truncated_frames, b.truncated_frames);
  d.retransmissions = sub(c.retransmissions, b.retransmissions);
  d.seu_flips = sub(c.seu_flips, b.seu_flips);
  d.ecc_corrections = sub(c.ecc_corrections, b.ecc_corrections);
  d.dropped = dropped;
  return d;
}

void Supervisor::mark_down(BoardSupervision& b) {
  if (b.down) return;
  b.down = true;
  b.down_since = now();
}

void Supervisor::mark_up(BoardSupervision& b) {
  if (!b.down) return;
  const util::Picoseconds t = now();
  const util::Picoseconds span = t > b.down_since ? t - b.down_since : 0;
  report_.downtime += span;
  report_.mttr += span;  // accumulator; divided by recoveries at the end
  ++report_.recoveries;
  b.down = false;
}

bool Supervisor::any_schedulable(int excluding) const {
  for (int i = 0; i < static_cast<int>(boards_.size()); ++i) {
    if (i == excluding) continue;
    const BoardCondition c = boards_[static_cast<std::size_t>(i)].condition;
    if (c == BoardCondition::kActive || c == BoardCondition::kProbation) {
      return true;
    }
  }
  return false;
}

void Supervisor::quarantine(int board_index) {
  BoardSupervision& b = boards_[static_cast<std::size_t>(board_index)];
  b.condition = BoardCondition::kQuarantined;
  b.clean_streak = 0;
  b.sick_windows = 0;
  service_.set_board_enabled(board_index, false);
  mark_down(b);
  ++report_.quarantines;
}

void Supervisor::readmit(int board_index) {
  BoardSupervision& b = boards_[static_cast<std::size_t>(board_index)];
  b.condition = BoardCondition::kProbation;
  b.probation_left = options_.health.probation_windows;
  b.clean_streak = 0;
  service_.set_board_enabled(board_index, true);
  mark_up(b);
  ++report_.readmissions;
}

void Supervisor::drain_to_spare() {
  if (spare_ == nullptr) return;
  for (const JobId id : service_.pending_ids()) {
    auto moved = service_.migrate_job(id, *spare_);
    if (moved.ok()) {
      ++report_.drained_jobs;
      migrated_since_checkpoint_ = true;
    }
  }
}

void Supervisor::retry_transient_failures() {
  for (const JobRecord& rec : service_.jobs()) {
    if (report_.job_retries >= options_.max_job_retries) return;
    if (rec.migrated || !transient(rec.error)) continue;
    if (service_.retry_job(rec.id).ok()) ++report_.job_retries;
  }
}

void Supervisor::make_checkpoint() {
  sim::SnapshotWriter w;
  service_.save_state(w);
  checkpoint_ = w.bytes();
  checkpoint_tick_ = report_.ticks;
  migrated_since_checkpoint_ = false;
  ++report_.checkpoints;
}

bool Supervisor::maybe_crash_and_restore() {
  sim::FaultInjector* inj = service_.system().fault_injector();
  if (inj == nullptr || !options_.enable_checkpoints) return false;
  const auto hit = inj->draw(sim::FaultKind::kServiceCrash, crash_site_);
  const std::uint64_t ordinal =
      inj->opportunities(sim::FaultKind::kServiceCrash, crash_site_);
  if (!hit.has_value() || ordinal <= last_crash_handled_) return false;
  last_crash_handled_ = ordinal;
  ++report_.crashes;
  ATLANTIS_CHECK(!checkpoint_.empty(), "run() must take a genesis checkpoint");
  auto reader = sim::SnapshotReader::open(checkpoint_);
  ATLANTIS_CHECK(reader.ok(), "the last good checkpoint must parse");
  service_.load_state(reader.value());
  ++report_.restores;
  rebaseline();
  return true;
}

void Supervisor::rebaseline() {
  // Counters may have rewound (checkpoint restore) — re-sample every
  // baseline, re-sync conditions with the service's flags and forget
  // breaker windows (tallies survive; they are the report's numbers).
  std::vector<core::HealthProbe> probes = service_.system().probe_health();
  for (int i = 0; i < static_cast<int>(boards_.size()); ++i) {
    BoardSupervision& b = boards_[static_cast<std::size_t>(i)];
    b.base = sample(i, probes[static_cast<std::size_t>(i)]);
    b.reconfig->reset();
    b.dma->reset();
    if (service_.board_dead(i)) {
      if (b.condition != BoardCondition::kDead) {
        b.condition = BoardCondition::kDead;
        b.dead_windows = 0;
        mark_down(b);
      }
    } else if (service_.board_quarantined(i)) {
      if (b.condition != BoardCondition::kQuarantined) {
        b.condition = BoardCondition::kQuarantined;
        b.clean_streak = 0;
        mark_down(b);
      }
    } else if (b.condition == BoardCondition::kDead ||
               b.condition == BoardCondition::kQuarantined) {
      b.condition = BoardCondition::kProbation;
      b.probation_left = options_.health.probation_windows;
      mark_up(b);
    }
    // A restore can rewind the clock below a down mark taken later on
    // the pre-crash timeline; the replay re-lives that span, so clamp
    // the mark to the restored clock instead of losing the whole span.
    if (b.down && b.down_since > now()) b.down_since = now();
  }
}

void Supervisor::tick() {
  // Genesis checkpoint: crash recovery must always have a floor to
  // restore to, even when checkpoint_every == 0 (the abort/rerun
  // baseline replays the whole run from here).
  if (options_.enable_checkpoints && checkpoint_.empty()) make_checkpoint();
  ++report_.ticks;
  const util::Picoseconds tick_start = now();

  // 1. Bounded service progress. run() resets the service report, so
  // report().migrated is this tick's count — a drop-out that moved its
  // active job to the spare mid-run shows up here.
  RunOptions bounded;
  bounded.max_dispatches = options_.dispatches_per_tick;
  service_.run(bounded);
  if (service_.report().migrated > 0) migrated_since_checkpoint_ = true;

  // 2-6. Probe every board and run its supervision state machine.
  std::vector<core::HealthProbe> probes = service_.system().probe_health();
  for (int i = 0; i < static_cast<int>(boards_.size()); ++i) {
    BoardSupervision& b = boards_[static_cast<std::size_t>(i)];
    const CounterBase cur = sample(i, probes[static_cast<std::size_t>(i)]);
    const bool dead_now = service_.board_dead(i);
    const bool dropped = dead_now && b.condition != BoardCondition::kDead;
    const HealthDelta d = diff(b.base, cur, dropped);
    // The success signal for both breakers is the window's completed
    // task switches: reconfiguration and DMA both ride every switch.
    const std::uint64_t traffic = sub(cur.switches, b.base.switches);
    b.base = cur;

    if (options_.enable_breakers) {
      b.reconfig->observe(d.reconfig_retries + d.crc_failures, traffic);
      b.dma->observe(d.dma_faults, traffic);
    }

    if (dropped) {
      b.condition = BoardCondition::kDead;
      b.dead_windows = 0;
      mark_down(b);
      continue;
    }

    if (b.condition == BoardCondition::kDead) {
      if (options_.repair_after > 0 &&
          ++b.dead_windows >= options_.repair_after) {
        service_.system().acb(i).set_alive(true);
        service_.revive_board(i);
        service_.set_board_enabled(i, true);
        b.score.reset();
        b.sick_windows = 0;
        b.dead_windows = 0;
        b.condition = BoardCondition::kProbation;
        b.probation_left = options_.health.probation_windows;
        mark_up(b);
        ++report_.repairs;
      }
      continue;
    }

    const bool clean = b.score.observe(d, options_.health);

    switch (b.condition) {
      case BoardCondition::kActive:
      case BoardCondition::kProbation: {
        // Escalating scrub on configuration damage; decay when clean.
        // An open reconfig breaker vetoes the scrub: every pass drives
        // the same flaky configuration port, and the breaker's whole
        // point is to stop hammering it until the half-open probe.
        const bool scrub_ok =
            options_.enable_scrub &&
            (!options_.enable_breakers ||
             b.reconfig->state() != BreakerState::kOpen);
        if (scrub_ok && d.config_upsets + d.crc_failures > 0) {
          ++b.sick_windows;
          int passes = options_.health.scrub_base;
          for (int s = 1; s < b.sick_windows &&
                          passes < options_.health.scrub_max; ++s) {
            passes *= 2;
          }
          passes = std::min(passes, options_.health.scrub_max);
          for (int s = 0; s < passes; ++s) service_.scrub_board(i);
          report_.scrubs += static_cast<std::uint64_t>(passes);
        } else if (clean) {
          b.sick_windows = 0;
        }

        const bool breaker_open =
            options_.enable_breakers &&
            (b.reconfig->state() == BreakerState::kOpen ||
             b.dma->state() == BreakerState::kOpen);
        const bool unhealthy =
            b.score.value() < options_.health.quarantine_below;
        if (options_.enable_quarantine && (unhealthy || breaker_open) &&
            any_schedulable(i)) {
          quarantine(i);
          break;
        }
        if (b.condition == BoardCondition::kProbation) {
          if (!clean) {
            if (options_.enable_quarantine && any_schedulable(i)) {
              quarantine(i);
            }
          } else if (--b.probation_left <= 0) {
            b.condition = BoardCondition::kActive;
          }
        }
        break;
      }
      case BoardCondition::kQuarantined: {
        // One scrub per window keeps the configuration converging
        // without the escalation ladder (scrubs draw SEU opportunities
        // themselves, so more passes are not automatically better). An
        // open reconfig breaker vetoes even this: the board sits out
        // the full open window before touching the config port again.
        if (options_.enable_scrub &&
            (!options_.enable_breakers ||
             b.reconfig->state() != BreakerState::kOpen)) {
          service_.scrub_board(i);
          ++report_.scrubs;
        }
        b.clean_streak = clean ? b.clean_streak + 1 : 0;
        const bool breakers_ok =
            !options_.enable_breakers ||
            (b.reconfig->allow() && b.dma->allow());
        if (b.clean_streak >= options_.health.readmit_after_clean &&
            breakers_ok) {
          readmit(i);
        }
        break;
      }
      case BoardCondition::kDead:
        break;  // handled above
    }
  }

  // 6b. Disaster path: nothing schedulable. A quarantined board is
  // recoverable — force the healthiest one back into probation rather
  // than giving up the crate. Only when every board is actually dead
  // does the queue drain to the spare (jobs must not wait out a field
  // repair when a hot spare is standing by).
  if (!any_schedulable()) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(boards_.size()); ++i) {
      const BoardSupervision& b = boards_[static_cast<std::size_t>(i)];
      if (b.condition != BoardCondition::kQuarantined) continue;
      if (best < 0 ||
          b.score.value() >
              boards_[static_cast<std::size_t>(best)].score.value()) {
        best = i;
      }
    }
    if (best >= 0) {
      readmit(best);
    } else if (spare_ != nullptr && service_.pending() > 0) {
      drain_to_spare();  // every board is dead
    }
  }

  // 7. Re-open jobs that failed for transient reasons.
  retry_transient_failures();

  // 8. Checkpoint cadence — forced after any migration so a later crash
  // can never rewind past it and duplicate jobs on the spare — then the
  // crash draw.
  if (options_.enable_checkpoints && !checkpoint_.empty()) {
    const bool due =
        options_.checkpoint_every > 0 &&
        report_.ticks - checkpoint_tick_ >=
            static_cast<std::uint64_t>(options_.checkpoint_every);
    if (migrated_since_checkpoint_ || due) make_checkpoint();
  }
  maybe_crash_and_restore();

  // Cumulative serving time: replayed segments after a restore count
  // again (the crate really re-lives them), so this is the honest
  // denominator for availability. A tick a restore rewound contributes
  // nothing — its replay will.
  const util::Picoseconds tick_end = now();
  if (tick_end > tick_start) report_.elapsed += tick_end - tick_start;
}

const SupervisorReport& Supervisor::run() {
  std::uint64_t guard = 0;
  while (service_.pending() > 0 || service_.has_active_jobs()) {
    tick();
    ATLANTIS_CHECK(++guard < 1000000, "supervised run failed to converge");
  }
  // A final retry sweep may re-open late failures; keep ticking until
  // the ledger is settled too.
  retry_transient_failures();
  while (service_.pending() > 0 || service_.has_active_jobs()) {
    tick();
    ATLANTIS_CHECK(++guard < 1000000, "supervised run failed to converge");
  }
  if (spare_ != nullptr && spare_->pending() > 0) spare_->run();

  // Availability over the supervised crate's own modelled horizon.
  const util::Picoseconds horizon = now();
  for (BoardSupervision& b : boards_) {
    if (!b.down) continue;
    const util::Picoseconds span =
        horizon > b.down_since ? horizon - b.down_since : 0;
    report_.downtime += span;
    report_.mttr += span;  // never recovered: the full remaining horizon
    ++report_.recoveries;
    b.down_since = horizon;  // accounted up to here; board stays down
  }
  if (report_.recoveries > 0) report_.mttr /= report_.recoveries;
  // Normalize by the cumulative serving time, not the final clock: a
  // crash restore rewinds the clock and the crate re-lives (and
  // re-accounts) the replayed span on both sides of the ratio.
  if (!boards_.empty() && report_.elapsed > 0) {
    const double total = static_cast<double>(report_.elapsed) *
                         static_cast<double>(boards_.size());
    report_.availability = std::max(
        0.0, 1.0 - static_cast<double>(report_.downtime) / total);
  }
  return report_;
}

BoardCondition Supervisor::board_condition(int board_index) const {
  return boards_.at(static_cast<std::size_t>(board_index)).condition;
}

double Supervisor::board_health(int board_index) const {
  return boards_.at(static_cast<std::size_t>(board_index)).score.value();
}

const CircuitBreaker& Supervisor::reconfig_breaker(int board_index) const {
  return *boards_.at(static_cast<std::size_t>(board_index)).reconfig;
}

const CircuitBreaker& Supervisor::dma_breaker(int board_index) const {
  return *boards_.at(static_cast<std::size_t>(board_index)).dma;
}

void Supervisor::reset(core::ResetScope scope) {
  service_.reset(scope);
  if (scope == core::ResetScope::kStats || scope == core::ResetScope::kAll) {
    report_ = SupervisorReport{};
  }
}

}  // namespace atlantis::serve
