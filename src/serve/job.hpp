// Job model of the ATLANTIS serving layer.
//
// One crate time-multiplexes heterogeneous workloads — TRT event
// blocks, image-processing tiles, volume-rendering frames, N-body
// steps — across the same FPGA boards via the task switcher (the
// paper's central claim). A job is the unit of that multiplexing: which
// tenant asked, which configuration (bitstream) it needs resident, how
// much data moves over PCI, and a pure work functor that produces the
// functional result plus the modelled compute time.
//
// The functor contract is what makes the scheduler's determinism
// guarantee possible: `work` must be a pure function of the values
// captured at submit time (no shared mutable state, no timeline access,
// no fault draws), because the service evaluates batches on a worker
// pool whose size must not be observable in any result or schedule.
// Everything stateful — reconfiguration, DMA, fault opportunities —
// happens on the scheduling thread.
//
// This header is intentionally header-only and depends only on util/,
// so the application libraries can provide job adapters without
// linking against the serve library.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::serve {

/// Workload taxonomy (one per application library, plus custom).
enum class JobKind {
  kTrtEvent,     // one TRT event block through the LUT histogrammer
  kImgTile,      // one 2-D filtering tile
  kVolrenFrame,  // one volume-rendered frame
  kNbodyStep,    // one N-body integration chunk
  kCustom,
};

/// Stable lowercase name ("trt_event", "img_tile", ...).
inline const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kTrtEvent: return "trt_event";
    case JobKind::kImgTile: return "img_tile";
    case JobKind::kVolrenFrame: return "volren_frame";
    case JobKind::kNbodyStep: return "nbody_step";
    case JobKind::kCustom: return "custom";
  }
  return "custom";
}

/// What one job's work functor produces: the functional result digest
/// and the modelled hardware cost the scheduler turns into timeline
/// transactions.
struct JobOutcome {
  bool ok = true;
  std::string detail;             // human-readable result summary
  std::uint64_t checksum = 0;     // digest of the functional output
  double value = 0.0;             // kind-specific figure (tracks, fps, ...)
  util::Picoseconds compute_time = 0;  // modelled on-board compute
  std::uint64_t dma_in_bytes = 0;      // host -> board payload
  std::uint64_t dma_out_bytes = 0;     // board -> host result
};

using JobId = std::uint64_t;

/// FNV-1a digest over a container of integral values — the shared
/// result-checksum of the job adapters, so "same functional output"
/// is one number the determinism tests can compare.
template <typename Container>
std::uint64_t digest(const Container& values) {
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& v : values) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return h;
}

/// One submitted job. `config` names the bitstream that must be
/// resident before `work` may run; the scheduler batches jobs of equal
/// `config` to amortize reconfiguration. `arrival` is when the job
/// entered the service (modelled time; queue wait is measured from it).
struct JobSpec {
  std::string tenant;
  JobKind kind = JobKind::kCustom;
  std::string config;
  util::Picoseconds arrival = 0;
  /// Absolute completion deadline (modelled time); 0 = none. The
  /// preemptive policy schedules earliest-deadline-first and counts a
  /// finish past this as a deadline miss.
  util::Picoseconds deadline = 0;
  std::function<JobOutcome()> work;
};

/// The service's ledger entry for one job, filled as it moves through
/// queue -> batch -> board.
struct JobRecord {
  JobId id = 0;
  std::string tenant;
  JobKind kind = JobKind::kCustom;
  std::string config;
  int board = -1;  // ACB index it ran on; -1 = never dispatched
  util::Picoseconds arrival = 0;
  util::Picoseconds start = 0;   // service start on the board
  util::Picoseconds finish = 0;  // result DMA complete
  util::Picoseconds queue_wait = 0;
  util::Picoseconds deadline = 0;  // from the spec; 0 = none
  std::uint32_t preemptions = 0;   // times this job was slice-preempted
  bool migrated = false;  // checkpointed out and restored on another service
  util::ErrorCode error = util::ErrorCode::kOk;  // kOk when served
  JobOutcome outcome;
};

}  // namespace atlantis::serve
