// Health scoring and circuit breaking for the supervision loop.
//
// The supervisor (serve/supervisor.hpp) samples every board once per
// probe window and hands the counter deltas to the primitives here:
//
//   * HealthScore — a bounded additive score in [0, 1]. Faulty windows
//     subtract a weighted amount per fault, clean windows add a fixed
//     recovery credit; the quarantine and re-admission thresholds are
//     plain comparisons against it. Deliberately not an EWMA: integer
//     event counts in, exact float arithmetic out, so replay is
//     bit-identical.
//
//   * CircuitBreaker — the classic closed / open / half-open machine
//     over a rolling failure window, one per guarded path (reconfig,
//     DMA) per board. Opening starts a deterministic backoff measured
//     in probe ticks: base << (consecutive opens - 1), capped, plus a
//     jitter term derived from sim::jitter_stream — a pure function of
//     (seed, breaker name, open ordinal), so two breakers opened in the
//     same window still re-probe in different windows, and the whole
//     machine replays bit-identically without carrying RNG state.
//
// Everything here is plain data + deterministic arithmetic; nothing
// touches the timeline or the boards. The supervisor owns the policy
// of what to do with the verdicts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "util/units.hpp"

namespace atlantis::serve {

/// Counter deltas over one probe window, attributable to one board.
/// Assembled by the supervisor from core::HealthProbe, the board
/// driver's DMA/config counters and the switcher's reconfig counters.
struct HealthDelta {
  std::uint64_t dma_faults = 0;        // driver: stalls + aborts drawn
  std::uint64_t dma_retries = 0;       // driver: backoff retries issued
  std::uint64_t reconfig_retries = 0;  // switcher: CRC retry attempts
  std::uint64_t crc_failures = 0;      // FPGA: configuration CRC failures
  std::uint64_t config_upsets = 0;     // FPGA: configuration SRAM upsets
  std::uint64_t slink_errors = 0;      // S-Link: LDERR + truncations
  std::uint64_t retransmissions = 0;   // S-Link: retransmitted words
  std::uint64_t seu_flips = 0;         // memory-module data upsets
  std::uint64_t ecc_corrections = 0;   // SDRAM ECC events
  bool dropped = false;                // board went !alive this window

  std::uint64_t total() const {
    return dma_faults + dma_retries + reconfig_retries + crc_failures +
           config_upsets + slink_errors + retransmissions + seu_flips +
           ecc_corrections + (dropped ? 1 : 0);
  }
};

/// Thresholds and weights for the per-board health state machine.
struct HealthPolicy {
  /// Score subtracted per weighted fault event (see weighted_faults).
  double degrade_per_fault = 0.08;
  /// Score added per completely clean probe window.
  double recover_per_clean = 0.25;
  /// Below this the board is quarantined (when another board or a spare
  /// can carry the load).
  double quarantine_below = 0.5;
  /// Clean windows a quarantined board must string together before
  /// re-admission into probation.
  int readmit_after_clean = 2;
  /// Clean probation windows before the board is fully trusted again;
  /// any fault during probation sends it straight back to quarantine.
  int probation_windows = 2;
  /// Escalating scrub: a window with config upsets or CRC failures gets
  /// min(scrub_base << sick_windows, scrub_max) scrub passes.
  int scrub_base = 1;
  int scrub_max = 8;
};

/// Severity weighting: configuration damage (upsets, CRC) is worth more
/// than a retried DMA word, retransmissions are nearly free.
double weighted_faults(const HealthDelta& d);

/// The bounded additive per-board health score.
class HealthScore {
 public:
  double value() const { return value_; }
  /// Applies one probe window; returns true when the window was clean.
  bool observe(const HealthDelta& d, const HealthPolicy& policy);
  void reset() { value_ = 1.0; }

 private:
  double value_ = 1.0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* breaker_state_name(BreakerState s);

struct BreakerOptions {
  /// Failures within the rolling window that trip the breaker.
  std::uint64_t failure_threshold = 3;
  /// Rolling window length, in probe ticks.
  int window_ticks = 4;
  /// Open duration before the half-open probe: base << (opens-1), capped.
  int base_open_ticks = 2;
  int max_open_ticks = 32;
  /// Additional open time, as a fraction of the open duration, drawn
  /// deterministically per open (see header comment). 0 disables.
  double jitter = 0.5;
};

class CircuitBreaker {
 public:
  /// `name` seeds the jitter stream together with `seed` — give each
  /// breaker a distinct name ("reconfig/acb0", "dma/acb1") so their
  /// re-probe windows desynchronize.
  CircuitBreaker(BreakerOptions options, std::string name,
                 std::uint64_t seed);

  /// One probe window: record the window's failure/success counts and
  /// advance time one tick. State transitions happen here.
  void observe(std::uint64_t failures, std::uint64_t successes);

  /// False while the breaker is open: the guarded path must not be
  /// attempted. Half-open allows exactly the probe traffic through.
  bool allow() const { return state_ != BreakerState::kOpen; }
  BreakerState state() const { return state_; }

  std::uint64_t opens() const { return opens_; }
  std::uint64_t half_opens() const { return half_opens_; }
  int open_ticks_left() const { return open_left_; }

  /// Forgets history (window, escalation) without touching tallies —
  /// used when a crash-restore re-baselines the supervisor.
  void reset();

 private:
  void trip();

  BreakerOptions options_;
  std::string name_;
  std::uint64_t seed_ = 0;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<std::uint64_t> window_;  // per-tick failure counts
  int open_left_ = 0;
  std::uint64_t consecutive_opens_ = 0;  // escalation ladder
  std::uint64_t opens_ = 0;
  std::uint64_t half_opens_ = 0;
};

}  // namespace atlantis::serve
