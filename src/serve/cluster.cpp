#include "serve/cluster.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace atlantis::serve {

namespace {

/// FNV-1a accumulator shared by the two cluster digests.
struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
  void mix(const std::string& s) {
    for (const char c : s) {
      mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
};

/// True once the shard-side ledger entry reached a terminal state.
bool job_done(const JobRecord& rec) {
  return rec.finish > 0 || rec.error != util::ErrorCode::kOk;
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), ring_(options_.ring_replicas) {
  ATLANTIS_CHECK(options_.boards_per_shard >= 1,
                 "a shard needs at least one computing board");
  ATLANTIS_CHECK(options_.max_placement_attempts >= 1,
                 "placement needs at least one attempt");
  ATLANTIS_CHECK(options_.max_pending_per_shard >= 1,
                 "a shard's bounded queue needs room for at least one job");
}

int Cluster::add_shard() {
  const int id = static_cast<int>(shards_.size());
  Shard shard;
  shard.name = "cluster/shard" + std::to_string(id);
  shard.system = core::assemble_crate(shard.name, options_.boards_per_shard);
  shard.service =
      std::make_unique<JobService>(*shard.system, options_.serve);
  for (const hw::Bitstream& bs : configs_) shard.service->register_config(bs);
  if (options_.supervised) {
    shard.supervisor =
        std::make_unique<Supervisor>(*shard.service, options_.supervisor);
  }
  shards_.push_back(std::move(shard));
  ring_.add_node(id, shards_.back().name);
  return id;
}

void Cluster::remove_shard(int shard) {
  Shard& s = live_shard(shard);
  ATLANTIS_CHECK(shard_count() > 1,
                 "cannot remove the last live shard of the cluster");
  ATLANTIS_CHECK(!s.service->has_active_jobs(),
                 "remove_shard needs a quiescent shard (drain with run() "
                 "first; a job is mid-compute)");
  // Off the ring and retired first, so the drain below re-homes onto
  // the survivors only.
  ring_.remove_node(shard);
  s.retired = true;

  for (const JobId local : s.service->pending_ids()) {
    const std::string config = s.service->job(local).config;
    const std::vector<int> candidates = place(config);
    ATLANTIS_CHECK(!candidates.empty(), "no live shard to drain onto");
    // The drain must land: bounded queues gate admission at the front
    // door, not a re-home forced by fleet shrinkage.
    Shard& target = live_shard(candidates.front());
    const util::Result<JobId> moved =
        s.service->migrate_job(local, *target.service);
    ATLANTIS_CHECK(moved.ok(), "drain migration failed: " + moved.message());
    const auto it = s.cluster_id.find(local);
    ATLANTIS_CHECK(it != s.cluster_id.end(),
                   "pending job missing from the shard's cluster-id map");
    ClusterRecord& rec = records_[it->second];
    rec.shard = candidates.front();
    rec.local = moved.value();
    target.cluster_id[moved.value()] = rec.id;
    s.cluster_id.erase(it);
    ++window_drained_;
  }
}

int Cluster::shard_count() const {
  int n = 0;
  for (const Shard& s : shards_) {
    if (!s.retired) ++n;
  }
  return n;
}

bool Cluster::shard_retired(int shard) const {
  ATLANTIS_CHECK(shard >= 0 && shard < static_cast<int>(shards_.size()),
                 "shard index out of range");
  return shards_[static_cast<std::size_t>(shard)].retired;
}

Cluster::Shard& Cluster::live_shard(int shard) {
  ATLANTIS_CHECK(shard >= 0 && shard < static_cast<int>(shards_.size()),
                 "shard index out of range");
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  ATLANTIS_CHECK(!s.retired, "shard " + std::to_string(shard) + " is retired");
  return s;
}

const Cluster::Shard& Cluster::live_shard(int shard) const {
  return const_cast<Cluster*>(this)->live_shard(shard);
}

core::AtlantisSystem& Cluster::system(int shard) {
  return *live_shard(shard).system;
}

JobService& Cluster::service(int shard) { return *live_shard(shard).service; }

Supervisor* Cluster::supervisor(int shard) {
  return live_shard(shard).supervisor.get();
}

void Cluster::register_config(const hw::Bitstream& bs) {
  configs_.push_back(bs);
  for (Shard& s : shards_) {
    if (!s.retired) s.service->register_config(bs);
  }
}

std::vector<int> Cluster::place(const std::string& config) {
  if (options_.placement == PlacementPolicy::kConsistentHash) {
    return ring_.successors(config, options_.max_placement_attempts);
  }
  // kRandom: deterministic spray over the live shards, keyed on the
  // submission ordinal — replayable, but blind to configuration
  // affinity (the baseline the bench measures the ring against).
  std::vector<int> live;
  for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
    if (!shards_[static_cast<std::size_t>(i)].retired) live.push_back(i);
  }
  ATLANTIS_CHECK(!live.empty(), "placement over an empty fleet");
  const std::uint64_t h =
      placement_hash("spray#" + std::to_string(spray_counter_++));
  std::vector<int> out;
  const int attempts =
      std::min(options_.max_placement_attempts, static_cast<int>(live.size()));
  for (int a = 0; a < attempts; ++a) {
    out.push_back(live[(h + static_cast<std::uint64_t>(a)) % live.size()]);
  }
  return out;
}

std::uint64_t Cluster::tenant_quota(const std::string& tenant) const {
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(shard_count()) *
      options_.max_pending_per_shard;
  const auto weight_of = [this](const std::string& t) {
    const auto it = options_.tenant_weights.find(t);
    return it != options_.tenant_weights.end() ? it->second : 1.0;
  };
  // Total weight over every tenant the front-end has seen (in-flight or
  // explicitly weighted), including this one — the live contention set.
  double total = 0.0;
  bool seen = false;
  for (const auto& [t, w] : options_.tenant_weights) {
    total += w;
    if (t == tenant) seen = true;
  }
  for (const auto& [t, n] : in_flight_) {
    (void)n;
    if (options_.tenant_weights.count(t) != 0) continue;  // already counted
    total += 1.0;
    if (t == tenant) seen = true;
  }
  if (!seen) total += weight_of(tenant);
  if (total <= 0.0) return capacity;
  const double share =
      static_cast<double>(capacity) * weight_of(tenant) / total;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(share));
}

util::Result<JobId> Cluster::refuse(util::ErrorCode code,
                                    const std::string& why) {
  refusals_.push_back(code);
  if (code == util::ErrorCode::kShardOverload) {
    ++window_shed_;
  } else {
    ++window_rejected_;
  }
  return util::Result<JobId>::failure(code, why);
}

util::Result<JobId> Cluster::submit(JobSpec spec) {
  ATLANTIS_CHECK(shard_count() > 0, "submit to a cluster with no shards");
  ++window_submitted_;

  const auto known = std::find_if(
      configs_.begin(), configs_.end(),
      [&spec](const hw::Bitstream& bs) { return bs.name == spec.config; });
  if (known == configs_.end()) {
    return refuse(util::ErrorCode::kAdmissionReject,
                  "configuration '" + spec.config +
                      "' was never registered with the cluster");
  }

  // Concern 2: weighted-fair tenant share of the fleet's queue room.
  if (options_.fair_admission &&
      in_flight_[spec.tenant] >= tenant_quota(spec.tenant)) {
    return refuse(util::ErrorCode::kAdmissionReject,
                  "tenant '" + spec.tenant +
                      "' is past its weighted-fair share of the cluster");
  }

  // Concern 1 + 4: placement with bounded-queue overflow.
  const std::vector<int> candidates = place(spec.config);
  int picked = -1;
  int attempts = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Shard& s = live_shard(candidates[i]);
    if (s.service->pending() < options_.max_pending_per_shard) {
      picked = candidates[i];
      attempts = static_cast<int>(i);
      break;
    }
  }
  if (picked < 0) {
    return refuse(util::ErrorCode::kShardOverload,
                  "every candidate shard's queue is full (" +
                      std::to_string(candidates.size()) + " tried)");
  }

  // Concern 3: deadline admission against the target's backlog.
  Shard& home = live_shard(picked);
  if (options_.slo_admission && spec.deadline > 0 &&
      home.ewma_service > 0) {
    const util::Picoseconds backlog =
        static_cast<util::Picoseconds>(home.service->pending() + 1) *
        home.ewma_service;
    if (spec.arrival + backlog > spec.deadline) {
      return refuse(util::ErrorCode::kAdmissionReject,
                    "deadline unreachable: shard backlog estimate " +
                        std::to_string(backlog) + " ps");
    }
  }

  const std::string tenant = spec.tenant;
  util::Result<JobId> local = home.service->submit(std::move(spec));
  if (!local.ok()) {
    // The shard's own admission (per-tenant quota) refused; surface the
    // verdict through the same refusal ledger.
    return refuse(local.error(), local.message());
  }

  ClusterRecord rec;
  rec.id = static_cast<JobId>(records_.size());
  rec.tenant = tenant;
  rec.config = configs_[static_cast<std::size_t>(
                            std::distance(configs_.begin(), known))]
                   .name;
  rec.shard = picked;
  rec.local = local.value();
  rec.attempts = attempts;
  home.cluster_id[rec.local] = rec.id;
  records_.push_back(rec);
  window_ids_.push_back(rec.id);
  ++home.admitted_window;
  ++in_flight_[tenant];
  if (attempts > 0) ++window_overflowed_;
  return rec.id;
}

const ClusterReport& Cluster::run(const RunOptions& options) {
  report_ = ClusterReport{};
  report_.submitted = window_submitted_;
  report_.rejected_admission = window_rejected_;
  report_.shed_overload = window_shed_;
  report_.overflowed = window_overflowed_;
  report_.drained = window_drained_;
  window_submitted_ = 0;
  window_rejected_ = 0;
  window_shed_ = 0;
  window_overflowed_ = 0;
  window_drained_ = 0;

  // Baselines over the cumulative switcher counters, so supervised
  // shards (whose Supervisor::run issues many service runs) and plain
  // shards report through one code path.
  struct Base {
    std::uint64_t switches = 0, hits = 0, misses = 0, partials = 0;
  };
  std::vector<Base> base(shards_.size());
  const auto counters = [](const Shard& s) {
    Base b;
    for (int i = 0; i < s.service->board_count(); ++i) {
      const core::TaskSwitcher& sw = s.service->switcher(i);
      b.switches += sw.switch_count();
      b.hits += sw.cache_hits();
      b.misses += sw.cache_misses();
      b.partials += sw.partial_switches();
    }
    return b;
  };
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i].retired) base[i] = counters(shards_[i]);
  }

  // Drain every live shard. Each crate has its own timeline, so the
  // visit order cannot leak into any schedule or result.
  for (Shard& s : shards_) {
    if (s.retired) continue;
    if (s.supervisor != nullptr) {
      s.supervisor->run();
    } else {
      s.service->run(options);
    }
  }

  // Merge the window: job-level outcomes from the ledgers, crate-level
  // reconfiguration traffic from the counter deltas.
  util::LogHistogram latency;
  std::vector<JobId> carry;
  std::map<int, util::Picoseconds> shard_service_sum;
  std::map<int, std::uint64_t> shard_served;
  std::map<int, std::uint64_t> shard_failed;
  std::map<int, util::Picoseconds> shard_makespan;
  for (const JobId id : window_ids_) {
    const ClusterRecord& rec = records_[id];
    const JobRecord& jr =
        shards_[static_cast<std::size_t>(rec.shard)].service->job(rec.local);
    if (!job_done(jr)) {
      carry.push_back(id);  // bounded run left it queued; next window
      continue;
    }
    ++report_.admitted;  // terminal this window
    if (in_flight_[rec.tenant] > 0) --in_flight_[rec.tenant];
    if (jr.error == util::ErrorCode::kOk) {
      ++report_.served;
      // Sojourn floored at the pure service time: a job the scheduler
      // reached before its modelled arrival waited zero, not negative.
      latency.add(static_cast<double>(std::max(jr.finish - jr.arrival,
                                               jr.finish - jr.start)));
      report_.makespan = std::max(report_.makespan, jr.finish);
      if (jr.deadline > 0 && jr.finish > jr.deadline) {
        ++report_.deadline_misses;
      }
      shard_service_sum[rec.shard] += jr.finish - jr.start;
      ++shard_served[rec.shard];
      shard_makespan[rec.shard] =
          std::max(shard_makespan[rec.shard], jr.finish);
    } else {
      ++report_.failed;
      ++shard_failed[rec.shard];
    }
  }
  window_ids_ = std::move(carry);
  report_.p50_latency =
      static_cast<util::Picoseconds>(latency.quantile(0.50));
  report_.p99_latency =
      static_cast<util::Picoseconds>(latency.quantile(0.99));
  report_.p999_latency =
      static_cast<util::Picoseconds>(latency.quantile(0.999));

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    if (s.retired) continue;
    const Base cur = counters(s);
    ShardStats stats;
    stats.shard = static_cast<int>(i);
    stats.name = s.name;
    stats.admitted = s.admitted_window;
    s.admitted_window = 0;
    stats.served = shard_served[static_cast<int>(i)];
    stats.task_switches = cur.switches - base[i].switches;
    stats.full_reconfigs = (cur.switches - base[i].switches) -
                           (cur.hits - base[i].hits) -
                           (cur.partials - base[i].partials);
    stats.partial_reconfigs = cur.partials - base[i].partials;
    const std::uint64_t lookups =
        (cur.hits - base[i].hits) + (cur.misses - base[i].misses);
    stats.cache_hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(cur.hits - base[i].hits) /
                           static_cast<double>(lookups);
    report_.task_switches += stats.task_switches;
    report_.full_reconfigs += stats.full_reconfigs;
    report_.partial_reconfigs += stats.partial_reconfigs;
    report_.cache_hits += cur.hits - base[i].hits;
    report_.cache_misses += cur.misses - base[i].misses;
    stats.failed = shard_failed[static_cast<int>(i)];
    stats.makespan = shard_makespan[static_cast<int>(i)];
    report_.shards.push_back(stats);

    // SLO admission feedback: EWMA of this window's mean service time.
    const std::uint64_t served = shard_served[static_cast<int>(i)];
    if (served > 0) {
      const util::Picoseconds mean =
          shard_service_sum[static_cast<int>(i)] /
          static_cast<util::Picoseconds>(served);
      s.ewma_service =
          s.ewma_service == 0 ? mean : (s.ewma_service + mean) / 2;
    }
  }
  const std::uint64_t lookups = report_.cache_hits + report_.cache_misses;
  report_.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(report_.cache_hits) /
                         static_cast<double>(lookups);
  return report_;
}

void Cluster::reset(core::ResetScope scope) {
  for (Shard& s : shards_) {
    if (s.retired) continue;
    if (s.supervisor != nullptr) {
      s.supervisor->reset(scope);  // forwards to the service
    } else {
      s.service->reset(scope);
    }
  }
  if (scope == core::ResetScope::kStats || scope == core::ResetScope::kAll) {
    report_ = ClusterReport{};
  }
}

const JobRecord& Cluster::shard_record(JobId id) const {
  const ClusterRecord& rec = records_.at(id);
  return shards_.at(static_cast<std::size_t>(rec.shard))
      .service->job(rec.local);
}

std::size_t Cluster::pending() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    if (!s.retired) n += s.service->pending();
  }
  return n;
}

std::uint64_t Cluster::schedule_digest() const {
  Fnv acc;
  acc.mix(static_cast<std::uint64_t>(records_.size()));
  for (const ClusterRecord& rec : records_) {
    acc.mix(static_cast<std::uint64_t>(rec.shard));
    acc.mix(rec.local);
    acc.mix(static_cast<std::uint64_t>(rec.attempts));
  }
  for (const util::ErrorCode code : refusals_) {
    acc.mix(static_cast<std::uint64_t>(code));
  }
  for (const Shard& s : shards_) {
    for (const JobRecord& jr : s.service->jobs()) {
      acc.mix(jr.id);
      acc.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(jr.board)));
      acc.mix(static_cast<std::uint64_t>(jr.start));
      acc.mix(static_cast<std::uint64_t>(jr.finish));
      acc.mix(static_cast<std::uint64_t>(jr.error));
      acc.mix(jr.outcome.checksum);
    }
  }
  return acc.h;
}

std::uint64_t Cluster::functional_digest() const {
  // Sum of per-job digests: invariant under placement policy, shard
  // add/remove re-homing and ledger order. Migrated-out entries are
  // skipped (the receiving shard's ledger carries the outcome).
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) {
    for (const JobRecord& jr : s.service->jobs()) {
      if (jr.migrated || !job_done(jr) || jr.error != util::ErrorCode::kOk) {
        continue;
      }
      Fnv one;
      one.mix(jr.tenant);
      one.mix(jr.config);
      one.mix(jr.outcome.checksum);
      sum += one.h;
    }
  }
  return sum;
}

void Cluster::save_state(sim::SnapshotWriter& w) const {
  w.begin_section("serve/cluster");
  w.put_u32(static_cast<std::uint32_t>(shards_.size()));
  for (const Shard& s : shards_) {
    w.put_string(s.name);
    w.put_bool(s.retired);
    w.put_i64(s.ewma_service);
    w.put_u64(s.admitted_window);
  }
  w.put_u64(static_cast<std::uint64_t>(records_.size()));
  for (const ClusterRecord& rec : records_) {
    w.put_string(rec.tenant);
    w.put_string(rec.config);
    w.put_u32(static_cast<std::uint32_t>(rec.shard));
    w.put_u64(rec.local);
    w.put_u32(static_cast<std::uint32_t>(rec.attempts));
  }
  w.put_u64(static_cast<std::uint64_t>(refusals_.size()));
  for (const util::ErrorCode code : refusals_) {
    w.put_u16(static_cast<std::uint16_t>(code));
  }
  w.put_u64(static_cast<std::uint64_t>(in_flight_.size()));
  for (const auto& [tenant, n] : in_flight_) {
    w.put_string(tenant);
    w.put_u64(n);
  }
  w.put_u64(static_cast<std::uint64_t>(window_ids_.size()));
  for (const JobId id : window_ids_) w.put_u64(id);
  w.put_u64(window_submitted_);
  w.put_u64(window_rejected_);
  w.put_u64(window_shed_);
  w.put_u64(window_overflowed_);
  w.put_u64(window_drained_);
  w.put_u64(spray_counter_);
  w.end_section();

  // Each live shard's complete service snapshot rides as a nested
  // stream in its own uniquely tagged section — select() addresses the
  // first occurrence of a tag, so the shards' internal tags ("system",
  // "serve/service", ...) must not collide in the outer stream.
  for (const Shard& s : shards_) {
    if (s.retired) continue;
    sim::SnapshotWriter nested;
    s.service->save_state(nested);
    const std::vector<std::uint8_t>& bytes = nested.bytes();
    w.begin_section("serve/cluster/" + s.name);
    w.put_u64(static_cast<std::uint64_t>(bytes.size()));
    w.put_bytes(bytes.data(), bytes.size());
    w.end_section();
  }
}

void Cluster::load_state(sim::SnapshotReader& r) {
  r.select("serve/cluster");
  const std::uint32_t n_shards = r.get_u32();
  if (n_shards != shards_.size()) {
    throw util::StateError(
        "cluster snapshot fleet census mismatch: " +
        std::to_string(n_shards) + " shards saved vs " +
        std::to_string(shards_.size()) + " assembled");
  }
  for (Shard& s : shards_) {
    const std::string name = r.get_string();
    const bool retired = r.get_bool();
    if (name != s.name || retired != s.retired) {
      throw util::StateError(
          "cluster snapshot shard mismatch: saved '" + name +
          "' (retired=" + std::to_string(retired) + ") vs assembled '" +
          s.name + "' (retired=" + std::to_string(s.retired) +
          ") — the twin must replay the same add/remove history");
    }
    s.ewma_service = r.get_i64();
    s.admitted_window = r.get_u64();
    s.cluster_id.clear();
  }
  const std::uint64_t n_records = r.get_u64();
  records_.clear();
  records_.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    ClusterRecord rec;
    rec.id = i;
    rec.tenant = r.get_string();
    rec.config = r.get_string();
    rec.shard = static_cast<int>(r.get_u32());
    rec.local = r.get_u64();
    rec.attempts = static_cast<int>(r.get_u32());
    shards_.at(static_cast<std::size_t>(rec.shard))
        .cluster_id[rec.local] = rec.id;
    records_.push_back(std::move(rec));
  }
  const std::uint64_t n_refusals = r.get_u64();
  refusals_.clear();
  for (std::uint64_t i = 0; i < n_refusals; ++i) {
    refusals_.push_back(static_cast<util::ErrorCode>(r.get_u16()));
  }
  const std::uint64_t n_tenants = r.get_u64();
  in_flight_.clear();
  for (std::uint64_t i = 0; i < n_tenants; ++i) {
    std::string tenant = r.get_string();
    in_flight_[std::move(tenant)] = r.get_u64();
  }
  const std::uint64_t n_window = r.get_u64();
  window_ids_.clear();
  for (std::uint64_t i = 0; i < n_window; ++i) {
    window_ids_.push_back(r.get_u64());
  }
  window_submitted_ = r.get_u64();
  window_rejected_ = r.get_u64();
  window_shed_ = r.get_u64();
  window_overflowed_ = r.get_u64();
  window_drained_ = r.get_u64();
  spray_counter_ = r.get_u64();

  for (Shard& s : shards_) {
    if (s.retired) continue;
    r.select("serve/cluster/" + s.name);
    const std::uint64_t len = r.get_u64();
    std::vector<std::uint8_t> bytes(len);
    r.get_bytes(bytes.data(), bytes.size());
    util::Result<sim::SnapshotReader> nested =
        sim::SnapshotReader::open(std::move(bytes));
    if (!nested.ok()) {
      throw util::StateError("nested shard snapshot for '" + s.name +
                             "' failed to open: " + nested.message());
    }
    s.service->load_state(nested.value());
  }
}

}  // namespace atlantis::serve
