// serve::Cluster — one front-end API over a fleet of JobService shards.
//
// "Cluster-scale" ATLANTIS serving: N independent crates (each a full
// core::AtlantisSystem with its own boards, timeline and optional fault
// injector), each wrapped in a JobService — and, optionally, in its own
// self-healing Supervisor — behind a single submit()/run() front door
// that looks exactly like one big JobService. The front-end owns four
// concerns the per-crate service cannot see:
//
//   1. Placement. Jobs are sharded by *configuration* name over a
//      consistent-hash ring (serve/placement.hpp): every job needing
//      the same bitstream lands on the same crate, so that crate's
//      per-board LRU configuration caches and differential-reconfig
//      region signatures stay hot while the other crates never load
//      the configuration at all. PlacementPolicy::kRandom is the
//      cache-oblivious baseline the cluster bench measures the ring
//      against.
//
//   2. Weighted-fair tenant QoS. Each tenant holds a weight (default
//      1.0); its share of the cluster's bounded queue capacity is
//      weight / total_weight. A submit that would push the tenant past
//      its share is refused up front with kAdmissionReject — one noisy
//      tenant cannot starve the fleet.
//
//   3. SLO / deadline admission. When a job carries a deadline the
//      front-end estimates its completion from the target shard's
//      backlog (queue depth x an EWMA of observed per-job service
//      time, both modelled quantities) and refuses jobs that cannot
//      make their deadline with kAdmissionReject — shedding at the
//      door instead of burning reconfigurations on work that will
//      miss anyway.
//
//   4. Backpressure. Every shard's queue is bounded
//      (max_pending_per_shard). When the owner shard is full the
//      front-end walks the ring's successor shards
//      (max_placement_attempts distinct crates, overflow keeps cache
//      affinity for everything that fits) and, when all are full,
//      sheds with kShardOverload. Refusal verdicts are recorded in
//      submission order (refusals()) so a replay can assert they are
//      bit-identical.
//
// Elasticity: add_shard() assembles a new crate (core::assemble_crate)
// and replays every registered configuration onto it; remove_shard()
// takes the shard off the ring, then drains its pending jobs to the
// surviving shards with JobService::migrate_job — checkpoints carry
// the functional outcome, so the cluster-wide functional digest is
// preserved across the re-home (tested).
//
// Determinism contract (inherited from JobService and tested at this
// level): placement, admission verdicts, every shard's schedule and
// every job result are bit-identical across worker-pool sizes AND
// across shard iteration orders — shards share no timeline, so the
// order run() visits them cannot leak into any result. With fault
// injectors attached per shard, a replay under the same plans
// reproduces every refusal and every failure bit-for-bit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "serve/jobservice.hpp"
#include "serve/placement.hpp"
#include "serve/supervisor.hpp"
#include "sim/snapshot.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::serve {

struct ClusterOptions {
  /// Computing boards assembled into each shard's crate.
  int boards_per_shard = 2;
  /// Virtual nodes per shard on the placement ring.
  int ring_replicas = 64;
  PlacementPolicy placement = PlacementPolicy::kConsistentHash;
  /// Per-shard service options (cache capacity, policy, batching...).
  ServeOptions serve;
  /// Bounded queue: jobs a shard may hold pending before the front-end
  /// overflows to the next ring shard / sheds.
  std::size_t max_pending_per_shard = 256;
  /// Distinct shards tried per job (the owner plus ring successors)
  /// before shedding with kShardOverload. 1 = shed immediately.
  int max_placement_attempts = 2;
  /// Deadline admission control (concern 3 above); off admits any
  /// deadline and lets the shard count the miss.
  bool slo_admission = true;
  /// Weighted-fair tenant shares; tenants absent here weigh 1.0.
  std::map<std::string, double> tenant_weights;
  /// When true every tenant's pending share is capped (concern 2);
  /// off = first-come-first-served admission.
  bool fair_admission = true;
  /// Wrap each shard's service in its own serve::Supervisor and drain
  /// through it (self-healing per crate).
  bool supervised = false;
  SupervisorOptions supervisor;
};

/// Per-shard slice of one cluster run.
struct ShardStats {
  int shard = -1;
  std::string name;
  std::uint64_t admitted = 0;  // jobs homed here this window
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t task_switches = 0;
  std::uint64_t full_reconfigs = 0;
  std::uint64_t partial_reconfigs = 0;
  double cache_hit_rate = 0.0;
  util::Picoseconds makespan = 0;
};

/// Everything one Cluster::run() did, plus the admission verdicts
/// issued since the previous run (submit happens between runs).
struct ClusterReport {
  std::uint64_t submitted = 0;  // submit() calls in the window
  std::uint64_t admitted = 0;
  std::uint64_t rejected_admission = 0;  // QoS / SLO refusals
  std::uint64_t shed_overload = 0;       // every candidate shard full
  std::uint64_t overflowed = 0;  // admitted on a successor, not the owner
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t drained = 0;  // jobs re-homed by remove_shard
  std::uint64_t task_switches = 0;
  std::uint64_t full_reconfigs = 0;
  std::uint64_t partial_reconfigs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Max over shards (shards run concurrently in the model — each
  /// crate has its own timeline).
  util::Picoseconds makespan = 0;
  /// Sojourn (arrival -> result DMA complete) quantiles over the
  /// window's served jobs, estimated on a log-bucketed histogram.
  util::Picoseconds p50_latency = 0;
  util::Picoseconds p99_latency = 0;
  util::Picoseconds p999_latency = 0;
  std::vector<ShardStats> shards;  // live shards, by shard id
};

/// The cluster's ledger entry for one admitted job: where it lives.
struct ClusterRecord {
  JobId id = 0;  // cluster-level id (dense, in admission order)
  std::string tenant;
  std::string config;
  int shard = -1;     // current home shard
  JobId local = 0;    // id on that shard's service
  int attempts = 0;   // ring successors walked before landing (0 = owner)
};

class Cluster : public sim::Snapshottable {
 public:
  explicit Cluster(ClusterOptions options = {});

  const ClusterOptions& options() const { return options_; }

  // --- fleet management ------------------------------------------------
  /// Assembles a new crate ("<cluster>/shard<k>"), builds its service
  /// (and Supervisor when options().supervised), replays every
  /// registered configuration onto it and puts it on the ring. Returns
  /// the shard id (stable — retired shards keep their slot).
  int add_shard();
  /// Takes the shard off the ring and drains its pending jobs to the
  /// surviving shards via migrate_job (ledger re-homed; functional
  /// digest preserved). The shard must be quiescent (no job mid-
  /// compute) and must not be the last live shard.
  void remove_shard(int shard);
  int shard_count() const;  // live shards
  bool shard_retired(int shard) const;

  /// The shard's crate — attach a fault injector here before
  /// submitting to exercise the fleet under a fault plan.
  core::AtlantisSystem& system(int shard);
  JobService& service(int shard);
  /// nullptr when options().supervised is false.
  Supervisor* supervisor(int shard);

  // --- the front-end API (mirrors JobService) --------------------------
  /// Registers a configuration on every live shard (and on every shard
  /// added later). Must precede the first submit() referencing it.
  void register_config(const hw::Bitstream& bs);

  /// Admits one job through QoS -> SLO -> placement -> backpressure
  /// (file comment, concerns 1-4). Returns the cluster-level JobId, or
  /// kAdmissionReject (quota / deadline / unknown configuration) /
  /// kShardOverload (every candidate shard's bounded queue full).
  util::Result<JobId> submit(JobSpec spec);

  /// Drains every live shard (each on its own timeline; visit order
  /// cannot leak into results) and merges the window's report.
  /// options.max_dispatches bounds each shard's drain separately;
  /// options.pool sizes functional evaluation only. Supervised shards
  /// drain through their Supervisor instead.
  const ClusterReport& run(const RunOptions& options = {});

  const ClusterReport& report() const { return report_; }

  /// The uniform lifecycle verb (same scopes as AtlantisDriver /
  /// JobService / Supervisor): forwards to every live shard; kStats /
  /// kAll additionally clear this report. Ledger and queues survive.
  void reset(core::ResetScope scope);

  // --- inspection ------------------------------------------------------
  /// Cluster ledger, indexed by cluster JobId (admitted jobs only).
  const std::vector<ClusterRecord>& jobs() const { return records_; }
  const ClusterRecord& job(JobId id) const { return records_.at(id); }
  /// The shard-side ledger entry behind a cluster job.
  const JobRecord& shard_record(JobId id) const;
  /// Refusal verdicts in submission order since construction — the
  /// replay-identity surface for admission tests.
  const std::vector<util::ErrorCode>& refusals() const { return refusals_; }
  /// Pending jobs across the fleet.
  std::size_t pending() const;

  /// Order-sensitive digest over placement and every shard's schedule
  /// (shard ids, local ids, boards, finish times, checksums) — equal
  /// iff two cluster runs made identical decisions. The determinism
  /// surface for the pool-size / iteration-order tests and the bench.
  std::uint64_t schedule_digest() const;
  /// Order-independent digest over the functional outcomes of every
  /// served job (tenant, config, checksum) — invariant under placement
  /// policy and shard add/remove re-homing.
  std::uint64_t functional_digest() const;

  /// Snapshottable composite: a "serve/cluster" section (fleet census,
  /// ledger, admission state) followed by each live shard's full
  /// service snapshot. load_state restores into a twin cluster with
  /// the same add/remove history, options and configurations.
  void save_state(sim::SnapshotWriter& w) const override;
  void load_state(sim::SnapshotReader& r) override;

 private:
  struct Shard {
    std::string name;
    bool retired = false;
    std::unique_ptr<core::AtlantisSystem> system;
    std::unique_ptr<JobService> service;
    std::unique_ptr<Supervisor> supervisor;
    /// local JobId -> cluster JobId, for re-homing on drain.
    std::map<JobId, JobId> cluster_id;
    /// EWMA of observed per-job service time (SLO admission).
    util::Picoseconds ewma_service = 0;
    std::uint64_t admitted_window = 0;  // since the last run()
  };

  Shard& live_shard(int shard);
  const Shard& live_shard(int shard) const;
  /// Candidate shards for a job, in placement order (owner first).
  std::vector<int> place(const std::string& config);
  /// Weighted-fair share of the cluster's queue capacity for `tenant`.
  std::uint64_t tenant_quota(const std::string& tenant) const;
  util::Result<JobId> refuse(util::ErrorCode code, const std::string& why);

  ClusterOptions options_;
  HashRing ring_;
  std::vector<Shard> shards_;
  std::vector<hw::Bitstream> configs_;  // replayed onto new shards
  std::vector<ClusterRecord> records_;
  std::vector<util::ErrorCode> refusals_;
  std::map<std::string, std::uint64_t> in_flight_;  // per tenant
  /// Cluster ids admitted since the last run() (the report window).
  std::vector<JobId> window_ids_;
  /// Admission counters accrued since the last run().
  std::uint64_t window_submitted_ = 0;
  std::uint64_t window_rejected_ = 0;
  std::uint64_t window_shed_ = 0;
  std::uint64_t window_overflowed_ = 0;
  std::uint64_t window_drained_ = 0;
  std::uint64_t spray_counter_ = 0;  // kRandom placement ordinal
  ClusterReport report_;
};

}  // namespace atlantis::serve
