#include "serve/health.hpp"

#include <algorithm>

#include "sim/fault.hpp"
#include "util/status.hpp"

namespace atlantis::serve {

double weighted_faults(const HealthDelta& d) {
  return 3.0 * static_cast<double>(d.crc_failures + d.config_upsets) +
         2.0 * static_cast<double>(d.seu_flips) +
         1.0 * static_cast<double>(d.dma_faults + d.slink_errors) +
         0.5 * static_cast<double>(d.reconfig_retries) +
         0.25 * static_cast<double>(d.ecc_corrections) +
         0.1 * static_cast<double>(d.retransmissions) +
         (d.dropped ? 10.0 : 0.0);
}

bool HealthScore::observe(const HealthDelta& d, const HealthPolicy& policy) {
  const double w = weighted_faults(d);
  if (w > 0.0) {
    value_ = std::max(0.0, value_ - policy.degrade_per_fault * w);
    return false;
  }
  value_ = std::min(1.0, value_ + policy.recover_per_clean);
  return true;
}

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options, std::string name,
                               std::uint64_t seed)
    : options_(options), name_(std::move(name)), seed_(seed) {
  ATLANTIS_CHECK(options_.failure_threshold >= 1,
                 "a breaker needs a positive failure threshold");
  ATLANTIS_CHECK(options_.window_ticks >= 1, "breaker window must be >= 1");
  ATLANTIS_CHECK(options_.base_open_ticks >= 1 &&
                     options_.max_open_ticks >= options_.base_open_ticks,
                 "breaker open duration must be >= 1 and capped sanely");
}

void CircuitBreaker::trip() {
  ++opens_;
  ++consecutive_opens_;
  state_ = BreakerState::kOpen;
  window_.clear();
  // Escalating open duration, capped; shifts saturate well before 64.
  const int shift = static_cast<int>(
      std::min<std::uint64_t>(consecutive_opens_ - 1, 30));
  int open_for = options_.base_open_ticks;
  for (int i = 0; i < shift && open_for < options_.max_open_ticks; ++i) {
    open_for *= 2;
  }
  open_for = std::min(open_for, options_.max_open_ticks);
  if (options_.jitter > 0.0) {
    // Deterministic per-open jitter in [0, jitter * open_for]: a pure
    // function of (seed, breaker name, open ordinal), no RNG state.
    const std::uint64_t word = sim::jitter_stream(seed_, name_, opens_);
    const double u = static_cast<double>(word >> 11) * 0x1.0p-53;
    open_for += static_cast<int>(options_.jitter * u *
                                 static_cast<double>(open_for));
  }
  open_left_ = std::max(1, open_for);
}

void CircuitBreaker::observe(std::uint64_t failures,
                             std::uint64_t successes) {
  switch (state_) {
    case BreakerState::kOpen:
      if (--open_left_ <= 0) {
        state_ = BreakerState::kHalfOpen;
        ++half_opens_;
      }
      return;
    case BreakerState::kHalfOpen:
      // The probe window decides: any failure re-opens escalated, a
      // clean window with real traffic closes; an idle window keeps
      // probing.
      if (failures > 0) {
        trip();
      } else if (successes > 0) {
        state_ = BreakerState::kClosed;
        consecutive_opens_ = 0;
        window_.clear();
      }
      return;
    case BreakerState::kClosed:
      break;
  }
  window_.push_back(failures);
  while (static_cast<int>(window_.size()) > options_.window_ticks) {
    window_.pop_front();
  }
  std::uint64_t in_window = 0;
  for (const std::uint64_t f : window_) in_window += f;
  if (in_window >= options_.failure_threshold) {
    trip();
  } else if (failures == 0 && successes > 0) {
    // Healthy traffic decays the escalation ladder.
    consecutive_opens_ = 0;
  }
}

void CircuitBreaker::reset() {
  state_ = BreakerState::kClosed;
  window_.clear();
  open_left_ = 0;
  consecutive_opens_ = 0;
}

}  // namespace atlantis::serve
