// The self-healing supervision loop over a JobService.
//
// The ATLANTIS operating concept (paper §"system integration") is a
// crate that keeps serving through the faults its own hardware model
// injects: SEUs in configuration SRAM, S-Link corruption, PCI DMA
// stalls, whole-board drop-outs — and, one level up, the serving
// process itself dying. The Supervisor closes that loop in software:
//
//   run():  while work remains:
//     1. let the service make a bounded amount of progress
//        (JobService::run_bounded, `dispatches_per_tick` steps);
//     2. probe every board (core::HealthProbe + driver/switcher
//        counters) and diff against the previous window;
//     3. feed the per-board reconfig and DMA circuit breakers
//        (serve/health.hpp) with the window's failure/success counts;
//     4. update each board's health score; escalate configuration
//        scrubbing on sick windows; quarantine boards whose score sank
//        below threshold or whose breaker opened (never the last
//        schedulable board);
//     5. re-admit quarantined boards after a clean streak, through a
//        probation period; any probation fault sends them back;
//     6. dead boards: after `repair_after` windows the field-repair
//        model powers them back on (AcbBoard::set_alive + revive_board)
//        into probation; while the crate has no schedulable board,
//        pending work drains to the spare crate via migrate_job;
//     7. re-open jobs that resolved with transient errors (board died
//        mid-batch, retry budget exhausted) up to `max_job_retries`;
//     8. every `checkpoint_every` ticks — and unconditionally after any
//        tick that migrated jobs — snapshot the whole service; then
//        draw the kServiceCrash fault and, on a hit, restore the last
//        good checkpoint and replay from it.
//
// Determinism: every decision above is a pure function of the service's
// deterministic state and the FaultPlan streams, so a supervised run is
// bit-identical under replay of the same seed — including crash points,
// because the service snapshot contains the injector and restoring it
// rewinds the crash-site stream. The supervisor keeps the ordinal of
// the last *handled* crash outside the snapshot, so the re-drawn echo
// of a crash it already recovered from is ignored instead of looping.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/health_probe.hpp"
#include "serve/health.hpp"
#include "serve/jobservice.hpp"
#include "util/units.hpp"

namespace atlantis::serve {

/// Supervision condition of one board, as the supervisor sees it.
/// kActive -> kQuarantined (bad score / open breaker) -> kProbation
/// (clean streak) -> kActive; kBoardDropout faults force kDead, field
/// repair returns the board through kProbation.
enum class BoardCondition { kActive, kQuarantined, kProbation, kDead };
const char* board_condition_name(BoardCondition c);

struct SupervisorOptions {
  /// Scheduling steps (batches / slices) the service runs per tick.
  std::size_t dispatches_per_tick = 2;
  /// Background checkpoint cadence in ticks; 0 disables periodic
  /// checkpoints (crash recovery then replays from genesis — the
  /// abort/rerun baseline the chaos bench compares against).
  int checkpoint_every = 8;
  /// Probe windows before a dead board's field repair completes; 0
  /// disables repair (dead boards stay dead).
  int repair_after = 4;
  /// Total transient-failure retries across all jobs; caps rescue work
  /// so a permanently sick crate still terminates.
  std::uint64_t max_job_retries = 16;
  bool enable_quarantine = true;
  bool enable_breakers = true;
  /// Escalating configuration scrub on sick windows. Off, together with
  /// the switches above, repair_after = 0 and max_job_retries = 0, turns
  /// the supervisor into a pure observer — the "unsupervised" baseline
  /// of the chaos bench, with identical accounting and zero healing.
  bool enable_scrub = true;
  /// Master switch for crash recovery: when false the supervisor never
  /// draws kServiceCrash and never checkpoints.
  bool enable_checkpoints = true;
  HealthPolicy health;
  BreakerOptions reconfig_breaker;
  BreakerOptions dma_breaker;
};

/// Everything one supervised run did, for the chaos bench and tests.
struct SupervisorReport {
  std::uint64_t ticks = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;   // kServiceCrash faults handled
  std::uint64_t restores = 0;  // checkpoint restores performed
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;  // quarantine -> probation promotions
  std::uint64_t repairs = 0;       // dead boards powered back on
  std::uint64_t scrubs = 0;        // scrub passes issued by escalation
  std::uint64_t job_retries = 0;
  std::uint64_t drained_jobs = 0;  // migrated to the spare crate
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  /// Cumulative modelled time the ticks advanced the crate clock by.
  /// Replayed segments after a crash restore count once per replay, so
  /// this — not the final clock — is availability's denominator.
  util::Picoseconds elapsed = 0;
  /// Sum over boards of modelled time spent dead or quarantined.
  util::Picoseconds downtime = 0;
  /// Mean modelled time from a board going down to its re-admission /
  /// repair; boards never recovered count the full remaining horizon.
  util::Picoseconds mttr = 0;
  std::uint64_t recoveries = 0;  // down->up transitions behind mttr
  /// 1 - downtime / (boards * elapsed): the fraction of board-time the
  /// crate could schedule onto.
  double availability = 1.0;
};

class Supervisor {
 public:
  Supervisor(JobService& service, SupervisorOptions options = {});

  const SupervisorOptions& options() const { return options_; }

  /// Spare crate for drain-on-disaster; also installed as the service's
  /// migration target so a dying board's active job moves instead of
  /// failing. Not owned; must outlive the supervisor. nullptr detaches.
  void set_spare(JobService* spare);
  JobService* spare() const { return spare_; }

  /// Supervised drain: ticks until the service (and the spare, when one
  /// is attached) holds no pending or active work, then computes the
  /// availability figures. Returns the report.
  const SupervisorReport& run();

  /// One supervision window (steps 1-8 above); exposed for the soak
  /// test to interleave with its own fault assertions.
  void tick();

  const SupervisorReport& report() const { return report_; }

  /// The uniform lifecycle verb (same contract as JobService::reset and
  /// Cluster::reset): kTime/kFaults forward to the supervised service;
  /// kStats additionally clears this supervisor's report; kAll does both.
  /// Supervision state (conditions, breakers, checkpoints) is never
  /// touched — reset re-baselines accounting, it does not heal boards.
  void reset(core::ResetScope scope);
  BoardCondition board_condition(int board_index) const;
  double board_health(int board_index) const;
  const CircuitBreaker& reconfig_breaker(int board_index) const;
  const CircuitBreaker& dma_breaker(int board_index) const;

 private:
  /// Counter snapshot one probe window diffs against.
  struct CounterBase {
    core::HealthProbe probe;
    std::uint64_t dma_faults = 0;
    std::uint64_t dma_retries = 0;
    std::uint64_t config_retries = 0;
    std::uint64_t reconfig_retries = 0;
    std::uint64_t switches = 0;
    std::uint64_t scrubs = 0;
  };

  struct BoardSupervision {
    BoardCondition condition = BoardCondition::kActive;
    HealthScore score;
    CounterBase base;
    int clean_streak = 0;     // consecutive clean windows (quarantine)
    int probation_left = 0;   // clean windows still owed in probation
    int sick_windows = 0;     // scrub-escalation ladder
    int dead_windows = 0;     // windows since the drop-out
    util::Picoseconds down_since = 0;
    bool down = false;
    std::unique_ptr<CircuitBreaker> reconfig;
    std::unique_ptr<CircuitBreaker> dma;
  };

  util::Picoseconds now() const;
  CounterBase sample(int board_index, const core::HealthProbe& probe) const;
  HealthDelta diff(const CounterBase& base, const CounterBase& cur,
                   bool dropped) const;
  void mark_down(BoardSupervision& b);
  void mark_up(BoardSupervision& b);
  bool any_schedulable(int excluding = -1) const;
  void quarantine(int board_index);
  void readmit(int board_index);
  void drain_to_spare();
  void retry_transient_failures();
  void make_checkpoint();
  bool maybe_crash_and_restore();
  void rebaseline();

  JobService& service_;
  SupervisorOptions options_;
  JobService* spare_ = nullptr;
  std::vector<BoardSupervision> boards_;
  SupervisorReport report_;
  std::vector<std::uint8_t> checkpoint_;  // last good service snapshot
  std::uint64_t checkpoint_tick_ = 0;
  bool migrated_since_checkpoint_ = false;
  /// Highest kServiceCrash opportunity ordinal already recovered from.
  /// Deliberately NOT part of any snapshot: restoring rewinds the crash
  /// site's stream, so the handled draw replays as an echo we must skip.
  std::uint64_t last_crash_handled_ = 0;
  std::string crash_site_;
};

}  // namespace atlantis::serve
