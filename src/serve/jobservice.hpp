// JobService: the multi-tenant batch scheduler over an AtlantisSystem.
//
// This is the one documented front door for running work on the crate:
// clients submit jobs (serve/job.hpp), the service admission-controls
// them into per-configuration queues (serve/queue.hpp) and schedules
// them across every computing board — batching same-configuration jobs
// to amortize FPGA reconfiguration, activating recently used bitstreams
// from each board's LRU configuration cache (core/configcache.hpp), and
// posting every reconfiguration, DMA, compute and queue wait onto the
// crate timeline so per-tenant latency percentiles and board
// utilization fall out of the existing tooling.
//
// Determinism contract (tested): the schedule — every transaction on
// the timeline — and every job result are bit-identical across worker-
// pool sizes, and replay-identical for a fixed fault seed, including
// when a fault plan drops a board mid-stream. The mechanism is the same
// as the fault injector's: all scheduling decisions, fault draws and
// timeline posts happen on the calling thread in a fixed order; the
// worker pool only evaluates the pure job functors.
//
// Degradation: a board drop-out (PR 4 fault model) at dispatch time
// marks the board dead, invalidates its staged configurations, and
// re-queues the assembled batch at the front of its configuration
// queue, so the surviving boards absorb the work. With no boards left,
// remaining jobs complete with kBoardDead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/system.hpp"
#include "core/taskswitch.hpp"
#include "serve/job.hpp"
#include "serve/queue.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::util {
class WorkerPool;
}

namespace atlantis::serve {

/// Per-tenant service quality over one run() — the numbers a
/// "millions of users" operator actually watches.
struct TenantStats {
  std::string tenant;
  std::uint64_t jobs = 0;
  std::uint64_t failed = 0;
  util::Picoseconds p50_wait = 0;
  util::Picoseconds p99_wait = 0;
  util::Picoseconds max_wait = 0;
  util::Picoseconds mean_service = 0;  // start -> finish
};

/// Everything one run() did, in aggregate.
struct ServiceReport {
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t task_switches = 0;   // switches that moved context or data
  std::uint64_t full_reconfigs = 0;  // full bitstream loads (cache misses)
  std::uint64_t partial_reconfigs = 0;  // differential region loads
  std::uint64_t regions_loaded = 0;     // frames moved by those loads
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;
  util::Picoseconds reconfig_time = 0;
  util::Picoseconds partial_reconfig_time = 0;  // subset of reconfig_time
  util::Picoseconds makespan = 0;  // latest job finish (modelled)
  double jobs_per_second = 0.0;    // served / makespan
  std::vector<TenantStats> tenants;       // sorted by tenant name
  std::vector<int> dead_boards;           // ACB indices lost to drop-outs
};

class JobService {
 public:
  /// Builds the service over every computing board currently in the
  /// crate. Each board gets a driver (its cursor on the timeline) and a
  /// task switcher over its host-PCI FPGA with the configuration cache
  /// from `options`.
  explicit JobService(core::AtlantisSystem& system, ServeOptions options = {});

  const ServeOptions& options() const { return options_; }
  core::AtlantisSystem& system() { return system_; }

  /// Registers a configuration every job referencing `bs.name` needs.
  /// Must precede the first submit() of that configuration.
  void register_config(const hw::Bitstream& bs);

  /// Admits one job. Fails with kOverloaded when the tenant already
  /// holds max_queued_per_tenant pending jobs, with a StateError throw
  /// when the configuration was never registered (caller misuse).
  util::Result<JobId> submit(JobSpec spec);

  /// Drains every queue across the alive boards and returns the run's
  /// report. `pool` sizes the functional evaluation only — the schedule
  /// and the results are bit-identical for any pool (nullptr = shared).
  const ServiceReport& run(util::WorkerPool* pool = nullptr);

  /// Ledger of every job ever submitted, indexed by JobId.
  const std::vector<JobRecord>& jobs() const { return records_; }
  const JobRecord& job(JobId id) const { return records_.at(id); }
  const ServiceReport& report() const { return report_; }

  std::size_t pending() const { return queues_.total(); }
  /// Per-board switcher (cache stats, current task) for inspection.
  const core::TaskSwitcher& switcher(int board_index) const;

 private:
  struct BoardState {
    int index = -1;
    bool dead = false;
    std::unique_ptr<core::AtlantisDriver> driver;
    std::unique_ptr<core::TaskSwitcher> switcher;
  };

  sim::TrackId tenant_track(const std::string& tenant);
  BoardState* pick_board();
  void serve_batch(BoardState& board, const std::string& config,
                   const std::deque<JobId>& batch,
                   util::WorkerPool& pool);
  void fail_remaining(util::ErrorCode code);
  void finalize_report();

  core::AtlantisSystem& system_;
  ServeOptions options_;
  std::vector<BoardState> boards_;
  std::map<std::string, hw::Bitstream> configs_;
  ConfigQueues queues_;
  std::map<std::string, std::uint64_t> pending_by_tenant_;
  std::map<std::string, sim::TrackId> tenant_tracks_;
  std::vector<JobSpec> specs_;      // by JobId
  std::vector<JobRecord> records_;  // by JobId
  std::vector<JobId> run_ids_;      // jobs resolved by the current run()
  ServiceReport report_;
};

}  // namespace atlantis::serve
