// JobService: the multi-tenant batch scheduler over an AtlantisSystem.
//
// This is the one documented front door for running work on the crate:
// clients submit jobs (serve/job.hpp), the service admission-controls
// them into per-configuration queues (serve/queue.hpp) and schedules
// them across every computing board — batching same-configuration jobs
// to amortize FPGA reconfiguration, activating recently used bitstreams
// from each board's LRU configuration cache (core/configcache.hpp), and
// posting every reconfiguration, DMA, compute and queue wait onto the
// crate timeline so per-tenant latency percentiles and board
// utilization fall out of the existing tooling.
//
// Determinism contract (tested): the schedule — every transaction on
// the timeline — and every job result are bit-identical across worker-
// pool sizes, and replay-identical for a fixed fault seed, including
// when a fault plan drops a board mid-stream. The mechanism is the same
// as the fault injector's: all scheduling decisions, fault draws and
// timeline posts happen on the calling thread in a fixed order; the
// worker pool only evaluates the pure job functors.
//
// Degradation: a board drop-out (PR 4 fault model) at dispatch time
// marks the board dead, invalidates its staged configurations, and
// re-queues the assembled batch at the front of its configuration
// queue, so the surviving boards absorb the work. With no boards left,
// remaining jobs complete with kBoardDead.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/system.hpp"
#include "core/taskswitch.hpp"
#include "serve/job.hpp"
#include "serve/queue.hpp"
#include "sim/snapshot.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::util {
class WorkerPool;
}

namespace atlantis::serve {

/// How far one run() call may go — the single entry point's knobs.
/// Default-constructed it drains everything, like the old run();
/// max_dispatches bounds the scheduling steps (batches under kBatched,
/// slices under the preemptive policies), like the old run_bounded();
/// stop_when pauses the drain as soon as the predicate turns true
/// (checked before every scheduling step, on the scheduling thread, so
/// it cannot perturb determinism); pool sizes the functional evaluation
/// only — the schedule and the results are bit-identical for any pool.
struct RunOptions {
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);
  std::size_t max_dispatches = kUnbounded;
  util::WorkerPool* pool = nullptr;  // nullptr = the shared pool
  std::function<bool()> stop_when;   // empty = never stop early
};

/// Per-tenant service quality over one run() — the numbers a
/// "millions of users" operator actually watches.
struct TenantStats {
  std::string tenant;
  std::uint64_t jobs = 0;
  std::uint64_t failed = 0;
  util::Picoseconds p50_wait = 0;
  util::Picoseconds p99_wait = 0;
  util::Picoseconds max_wait = 0;
  util::Picoseconds mean_service = 0;  // start -> finish
};

/// Everything one run() did, in aggregate.
struct ServiceReport {
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t task_switches = 0;   // switches that moved context or data
  std::uint64_t full_reconfigs = 0;  // full bitstream loads (cache misses)
  std::uint64_t partial_reconfigs = 0;  // differential region loads
  std::uint64_t regions_loaded = 0;     // frames moved by those loads
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;
  util::Picoseconds reconfig_time = 0;
  util::Picoseconds partial_reconfig_time = 0;  // subset of reconfig_time
  util::Picoseconds makespan = 0;  // latest job finish (modelled)
  double jobs_per_second = 0.0;    // served / makespan
  std::uint64_t preemptions = 0;      // slice preemptions this run
  std::uint64_t deadline_misses = 0;  // jobs finished past their deadline
  std::uint64_t migrated = 0;         // jobs checkpointed out to a target
  std::vector<TenantStats> tenants;       // sorted by tenant name
  std::vector<int> dead_boards;           // ACB indices lost to drop-outs
};

/// A job frozen mid-service: the versioned snapshot stream (section
/// "serve/job") carrying the job's identity, its already-evaluated
/// functional outcome and its compute progress — everything another
/// JobService needs to finish it without the work functor. The
/// convenience fields mirror the stream for inspection.
struct JobCheckpoint {
  JobId id = 0;
  std::string tenant;
  std::string config;
  std::vector<std::uint8_t> bytes;
};

class JobService : public sim::Snapshottable {
 public:
  /// Builds the service over every computing board currently in the
  /// crate. Each board gets a driver (its cursor on the timeline) and a
  /// task switcher over its host-PCI FPGA with the configuration cache
  /// from `options`.
  explicit JobService(core::AtlantisSystem& system, ServeOptions options = {});

  const ServeOptions& options() const { return options_; }
  core::AtlantisSystem& system() { return system_; }

  /// Registers a configuration every job referencing `bs.name` needs.
  /// Must precede the first submit() of that configuration.
  void register_config(const hw::Bitstream& bs);

  /// Admits one job. Fails with kOverloaded when the tenant already
  /// holds max_queued_per_tenant pending jobs, and with kAdmissionReject
  /// when the configuration was never registered — every recoverable
  /// refusal travels through the Result, never an exception; callers
  /// that want the old throwing behaviour write .value_or_throw().
  util::Result<JobId> submit(JobSpec spec);

  /// THE one entry point for making progress: drains every queue across
  /// the alive boards — all of it by default, or up to
  /// options.max_dispatches scheduling steps / until options.stop_when
  /// fires, leaving the remaining work queued / mid-job. A later run()
  /// — on this service or on a twin restored from save_state —
  /// continues exactly where it stopped (the snapshot tests save
  /// mid-stream at such a pause). Under Policy::kPreemptive /
  /// kAbortRerun the drain is EDF-ordered with slice-quantum preemption
  /// instead of batched. Returns the run's report.
  const ServiceReport& run(const RunOptions& options = {});

  /// Deprecated: use run({.pool = pool}). Thin forwarder kept so
  /// existing call sites compile and behave identically; in-tree use
  /// fails the -Werror=deprecated-declarations CI leg.
  [[deprecated("use run(const RunOptions&)")]]
  const ServiceReport& run(util::WorkerPool* pool) {
    RunOptions options;
    options.pool = pool;
    return run(options);
  }
  /// Deprecated: use run({.max_dispatches = n, .pool = pool}).
  [[deprecated("use run(const RunOptions&)")]]
  const ServiceReport& run_bounded(std::size_t max_dispatches,
                                   util::WorkerPool* pool = nullptr) {
    RunOptions options;
    options.max_dispatches = max_dispatches;
    options.pool = pool;
    return run(options);
  }

  // --- checkpoint / restore / migration --------------------------------
  /// Freezes one pending job (queued or preempted mid-compute) into a
  /// portable checkpoint and removes it from this service's scheduling
  /// structures (the ledger entry stays, in a checkpointed-out state).
  /// A job that was never dispatched has its pure work functor evaluated
  /// now, so the checkpoint always carries the functional outcome and
  /// never needs the functor. Fails with kJobNotPending when the job is
  /// not pending (already finished, failed, migrated or checkpointed).
  util::Result<JobCheckpoint> checkpoint_job(JobId id);

  /// Re-admits a checkpointed job. On the service that produced the
  /// checkpoint the original JobId is revived; on any other service a
  /// new id is issued. Compute progress is honoured by the preemptive
  /// policies (the job only pays its remaining compute). Fails with
  /// kOverloaded past the tenant quota, kSnapshot* on a bad stream and
  /// kAdmissionReject when the configuration is not registered here.
  util::Result<JobId> restore_job(const JobCheckpoint& ckpt);

  /// checkpoint_job + target.restore_job in one step: moves a pending
  /// job to another service (typically over another crate). The source
  /// ledger entry is marked migrated; the returned id is the job's id
  /// on the target.
  util::Result<JobId> migrate_job(JobId id, JobService& target);

  /// When set, losing the last alive board — or a drop-out under a
  /// preemptive policy — drains pending jobs to `target` via
  /// migrate_job instead of failing them with kBoardDead. The target is
  /// not owned and must outlive this service; nullptr detaches.
  void set_migration_target(JobService* target) { migration_target_ = target; }
  JobService* migration_target() const { return migration_target_; }

  /// Snapshottable composite: the whole serving state — the underlying
  /// system (boards, timeline, injector) via AtlantisSystem::save_state,
  /// then a "serve/service" section with the ledger, queues, per-job
  /// progress and per-board driver/switcher state. load_state restores
  /// into a twin service built over an identically assembled system with
  /// the same options, configurations and submissions (work functors
  /// live in the twin's own specs; they are never serialized).
  void save_state(sim::SnapshotWriter& w) const override;
  void load_state(sim::SnapshotReader& r) override;

  /// Ledger of every job ever submitted, indexed by JobId.
  const std::vector<JobRecord>& jobs() const { return records_; }
  const JobRecord& job(JobId id) const { return records_.at(id); }
  const ServiceReport& report() const { return report_; }

  /// The serve-wide lifecycle verb (same scopes as AtlantisDriver):
  /// kTime moves every board driver's elapsed() epoch; kStats
  /// additionally clears driver/PLX counters and this service's report;
  /// kFaults rewinds the crate's fault injector; kAll is everything.
  /// The ledger, queues and mid-job progress are never touched — reset
  /// re-zeroes accounting, it does not lose work.
  void reset(core::ResetScope scope);

  std::size_t pending() const { return queues_.total(); }
  /// True while any board holds a job mid-compute (preemptive policies
  /// paused by run_bounded).
  bool has_active_jobs() const;
  /// Per-board switcher (cache stats, current task) for inspection.
  const core::TaskSwitcher& switcher(int board_index) const;
  /// Per-board driver (timeline cursor, DMA/config fault counters).
  const core::AtlantisDriver& driver(int board_index) const;

  // --- supervision hooks (serve::Supervisor) ---------------------------
  int board_count() const { return static_cast<int>(boards_.size()); }
  bool board_dead(int board_index) const;
  bool board_quarantined(int board_index) const;

  /// Quarantine gate. A disabled board is skipped by the scheduler but
  /// stays alive (its cache and cursor survive); its active job, if any,
  /// is re-queued with its progress intact. When every schedulable board
  /// is merely quarantined (none alive and enabled), run() returns with
  /// the work still queued instead of failing it — the supervisor owns
  /// the next step (re-admission or a drain to the spare crate).
  void set_board_enabled(int board_index, bool enabled);

  /// Re-admits a board lost to a drop-out after the underlying AcbBoard
  /// came back alive (field repair / power cycle). The board rejoins the
  /// rotation with an invalidated cache; its next job pays a full
  /// configuration load.
  void revive_board(int board_index);

  /// One configuration scrub pass over the board's host-PCI FPGA
  /// (readback + rewrite; an SEU opportunity per window). Returns true
  /// when an upset was found and corrected.
  bool scrub_board(int board_index);

  /// Pending (queued) job ids, in deterministic queue order.
  std::vector<JobId> pending_ids() const;

  /// Re-opens a job that resolved with a transient failure (DMA retries
  /// exhausted, timeout, dead board): the ledger entry goes back to
  /// pending and the job is re-queued for a fresh dispatch. Fails with
  /// kJobNotPending for jobs that are pending, served, migrated or
  /// checkpointed out.
  util::Result<JobId> retry_job(JobId id);

 private:
  struct BoardState {
    int index = -1;
    bool dead = false;
    bool quarantined = false;     // supervision gate; skipped, not failed
    std::optional<JobId> active;  // job mid-compute (preemptive policies)
    std::unique_ptr<core::AtlantisDriver> driver;
    std::unique_ptr<core::TaskSwitcher> switcher;
  };

  /// What the service knows about a job once it has been touched by the
  /// scheduler: its (once-evaluated) pure outcome and how much of the
  /// modelled compute is still owed. This — not the functor — is what a
  /// checkpoint carries.
  struct JobProgress {
    JobOutcome outcome;
    bool outcome_ready = false;
    util::Picoseconds remaining = 0;
    bool input_done = false;
    std::uint32_t preemptions = 0;
  };

  sim::TrackId tenant_track(const std::string& tenant);
  BoardState* pick_board();
  /// True when at least one alive board is sidelined by the quarantine
  /// gate — the "no board" condition is then the supervisor's to fix.
  bool any_quarantined_alive() const;
  /// True when the bounded run should pause before the next step.
  bool paused(const RunOptions& options, std::size_t dispatches) const {
    return dispatches >= options.max_dispatches ||
           (options.stop_when && options.stop_when());
  }
  void run_batched(util::WorkerPool& pool, const RunOptions& options);
  void run_preemptive(const RunOptions& options);
  void serve_batch(BoardState& board, const std::string& config,
                   const std::deque<JobId>& batch,
                   util::WorkerPool& pool);
  /// EDF pick over every queued job (deadline 0 = +inf; ties by id);
  /// removes the winner from its queue. Returns nullopt when idle.
  std::optional<JobId> edf_pick();
  /// Earliest effective deadline among queued jobs, or nullopt.
  std::optional<util::Picoseconds> earliest_waiting_deadline() const;
  void ensure_progress(JobId id);
  bool start_run(BoardState& board, JobId id);
  void finish_run(BoardState& board);
  void preempt(BoardState& board);
  void fail_job(JobId id, util::ErrorCode code, const std::string& detail);
  /// Marks a board dead (drop-out / lost configuration path); its active
  /// job is re-queued — or migrated when a target is set.
  void lose_board(BoardState& board);
  JobCheckpoint make_checkpoint(JobId id);
  /// Migrates an already-detached pending job to the migration target.
  void migrate_out(JobId id);
  void fail_remaining(util::ErrorCode code);
  void finalize_report();

  core::AtlantisSystem& system_;
  ServeOptions options_;
  std::vector<BoardState> boards_;
  std::map<std::string, hw::Bitstream> configs_;
  ConfigQueues queues_;
  std::map<std::string, std::uint64_t> pending_by_tenant_;
  std::map<std::string, sim::TrackId> tenant_tracks_;
  std::vector<JobSpec> specs_;      // by JobId
  std::vector<JobRecord> records_;  // by JobId
  std::vector<JobId> run_ids_;      // jobs resolved by the current run()
  std::map<JobId, JobProgress> progress_;  // jobs touched, not yet resolved
  std::set<JobId> checkpointed_out_;
  JobService* migration_target_ = nullptr;
  ServiceReport report_;
};

}  // namespace atlantis::serve
