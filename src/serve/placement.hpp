// Shard placement for the serving cluster: which crate serves a job.
//
// The cluster front-end (serve/cluster.hpp) keys placement on the
// job's *configuration* name, not its tenant: two jobs that need the
// same bitstream should land on the same shard, so that shard's
// per-board LRU configuration caches and differential-reconfiguration
// signatures stay hot while the other shards never even see the
// configuration. A consistent-hash ring gives that affinity AND keeps
// it when shards come and go — removing a shard only re-homes the
// configurations that hashed onto it, instead of reshuffling the whole
// fleet the way `hash % n` would.
//
// Determinism: the ring is a pure function of the shard names and the
// replica count (FNV-1a over "name#replica", ties broken by shard
// index), so every front-end that saw the same add/remove history
// routes identically — across processes, worker-pool sizes and shard
// iteration orders. No RNG anywhere; the "random" baseline policy in
// the cluster is a seeded hash of the job ordinal, equally replayable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atlantis::serve {

/// FNV-1a 64-bit — the same digest family the job adapters use, small
/// enough to stay bit-identical everywhere.
std::uint64_t placement_hash(const std::string& key);

/// How the cluster maps a job to a shard.
enum class PlacementPolicy {
  /// Consistent-hash ring keyed on the job's configuration name:
  /// maximizes per-shard configuration-cache and differential-reconfig
  /// hits, minimal re-homing on shard add/remove.
  kConsistentHash,
  /// Deterministic spray keyed on the submission ordinal: the cache-
  /// oblivious baseline the bench compares the ring against.
  kRandom,
};

const char* placement_policy_name(PlacementPolicy policy);

/// The consistent-hash ring: `replicas` virtual nodes per shard, each
/// at placement_hash("<shard-name>#<replica>"), sorted; a key is owned
/// by the first virtual node clockwise from its hash. More replicas =
/// smoother load split (the cluster default of 64 keeps the max/min
/// shard imbalance under ~2x for a handful of shards).
class HashRing {
 public:
  explicit HashRing(int replicas = 64);

  /// Adds a shard's virtual nodes. `shard` is the caller's stable index
  /// (the cluster's shard id); `name` seeds the node positions and must
  /// be unique per shard.
  void add_node(int shard, const std::string& name);
  /// Removes every virtual node of `shard`.
  void remove_node(int shard);

  bool empty() const { return ring_.empty(); }
  int node_count() const;

  /// The shard owning `key` — the first virtual node at or clockwise
  /// after placement_hash(key). Ring must not be empty.
  int lookup(const std::string& key) const;

  /// The first `n` *distinct* shards clockwise from `key` — the
  /// overflow order the cluster walks when the owner's queue is full.
  /// Returns fewer when the ring holds fewer distinct shards.
  std::vector<int> successors(const std::string& key, int n) const;

 private:
  struct VNode {
    std::uint64_t hash;
    int shard;
    bool operator<(const VNode& o) const {
      return hash != o.hash ? hash < o.hash : shard < o.shard;
    }
  };

  int replicas_;
  std::vector<VNode> ring_;  // sorted
};

}  // namespace atlantis::serve
