// Admission control and per-configuration queues of the serving layer.
//
// Jobs are admitted against a per-tenant backlog quota (the crate must
// not let one tenant starve the rest of queue memory), then parked in
// the FIFO queue of the configuration they need. The scheduler drains
// whole batches from one queue at a time — that is what amortizes the
// FPGA reconfiguration a queue switch costs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "serve/job.hpp"
#include "util/units.hpp"

namespace atlantis::serve {

/// Scheduling discipline of the JobService.
enum class Policy {
  /// Drain whole same-configuration batches per board visit — the
  /// reconfiguration-amortizing default.
  kBatched,
  /// Earliest-deadline-first with slice-quantum preemption: a running
  /// job is checkpointed (compute progress kept) whenever a strictly
  /// earlier deadline is waiting, and resumed later from where it
  /// stopped — possibly on another board.
  kPreemptive,
  /// Like kPreemptive, but preemption discards progress: the victim
  /// re-pays its full compute (and its input DMA) when re-dispatched.
  /// The baseline the snapshot benchmark compares checkpointing against.
  kAbortRerun,
};

/// Tuning knobs of the JobService.
struct ServeOptions {
  /// Jobs of one configuration dispatched per board visit. 1 disables
  /// batching (every alternating job pays a reconfiguration).
  int max_batch = 8;
  /// Admission control: pending (queued, not yet dispatched) jobs one
  /// tenant may hold; submit() past it fails with kOverloaded.
  std::uint64_t max_queued_per_tenant = 1'000'000;
  /// Per-board bitstream cache capacity (0 disables the cache).
  std::size_t cache_capacity = 4;
  /// Fraction of a full configuration a cache-hit activation costs.
  double cache_hit_fraction = 1.0 / 64.0;
  /// Stream each job's input DMA asynchronously so it overlaps the
  /// previous compute (the driver's dma_*_async path).
  bool overlap_io = true;
  /// Serve strictly in submission order instead of draining one
  /// configuration's queue at a time — the reconfigure-per-job baseline
  /// the serving benchmark compares batching against.
  bool fifo_order = false;
  /// Differential region loading on cache misses (TaskSwitcher
  /// set_differential). Only bites for configurations registered with
  /// region signatures; bit-identical to the full-configure path
  /// otherwise. Off gives the A/B baseline for the serving benchmark.
  bool differential_reconfig = true;
  /// Order batches by config-diff distance: instead of draining the
  /// deepest queue, the scheduler serves the queue whose configuration
  /// is cheapest to switch to from the board's resident one
  /// (TaskSwitcher::estimate_switch_cost), ties broken by depth then
  /// name. Ignored when fifo_order is set.
  bool diff_order = false;
  /// Scheduling discipline. The preemptive policies ignore fifo_order /
  /// diff_order (job order is deadline-driven) but keep every other knob.
  Policy policy = Policy::kBatched;
  /// Preemption quantum of the preemptive policies: a running job yields
  /// a preemption opportunity every `preempt_slice` of modelled compute.
  /// <= 0 disables slicing (jobs run to completion once dispatched).
  util::Picoseconds preempt_slice = 2'000'000'000;  // 2 ms
};

/// FIFO queues keyed by configuration name, plus per-tenant backlog
/// counters. Deterministic by construction: std::map keeps the
/// configuration iteration order stable, and every queue preserves
/// submission order.
class ConfigQueues {
 public:
  void push_back(const std::string& config, JobId id) {
    queues_[config].push_back(id);
  }
  /// Re-queues at the FRONT, preserving original order of `ids` — used
  /// when a board dies with a batch assembled but not served.
  void push_front(const std::string& config, const std::deque<JobId>& ids) {
    auto& q = queues_[config];
    q.insert(q.begin(), ids.begin(), ids.end());
  }
  JobId pop_front(const std::string& config) {
    auto& q = queues_.at(config);
    const JobId id = q.front();
    q.pop_front();
    if (q.empty()) queues_.erase(config);
    return id;
  }

  /// Removes one specific id from a configuration's queue (the
  /// preemptive scheduler pulls by deadline, not position). Returns
  /// false when the id is not queued under that configuration.
  bool erase(const std::string& config, JobId id) {
    const auto it = queues_.find(config);
    if (it == queues_.end()) return false;
    auto& q = it->second;
    const auto pos = std::find(q.begin(), q.end(), id);
    if (pos == q.end()) return false;
    q.erase(pos);
    if (q.empty()) queues_.erase(it);
    return true;
  }

  /// Every queued job with its configuration, in (configuration, FIFO)
  /// order — the candidate list the EDF picker scans.
  std::vector<std::pair<std::string, JobId>> all() const {
    std::vector<std::pair<std::string, JobId>> out;
    out.reserve(total());
    for (const auto& [config, q] : queues_) {
      for (const JobId id : q) out.emplace_back(config, id);
    }
    return out;
  }

  bool empty() const { return queues_.empty(); }
  std::size_t depth(const std::string& config) const {
    const auto it = queues_.find(config);
    return it == queues_.end() ? 0 : it->second.size();
  }
  std::size_t total() const {
    std::size_t n = 0;
    for (const auto& [_, q] : queues_) n += q.size();
    return n;
  }

  /// The configuration whose queue head is the oldest job overall —
  /// strict submission order (the fifo_order baseline).
  std::string pick_fifo() const {
    std::string best;
    JobId best_id = ~JobId{0};
    for (const auto& [config, q] : queues_) {
      if (q.front() < best_id) {
        best_id = q.front();
        best = config;
      }
    }
    return best;
  }

  /// Config-diff-ordered variant: the non-empty queue whose
  /// configuration costs the least to switch to, per `cost` (the
  /// scheduler passes TaskSwitcher::estimate_switch_cost). Ties go to
  /// the deeper queue, then the smaller name — deterministic for any
  /// submission interleaving, like pick().
  template <typename CostFn>
  std::string pick_closest(CostFn&& cost) const {
    std::string best;
    util::Picoseconds best_cost = 0;
    std::size_t best_depth = 0;
    for (const auto& [config, q] : queues_) {
      const util::Picoseconds c = cost(config);
      if (best.empty() || c < best_cost ||
          (c == best_cost && q.size() > best_depth)) {
        best = config;
        best_cost = c;
        best_depth = q.size();
      }
    }
    return best;
  }

  /// The non-empty queue the scheduler should serve next: the resident
  /// configuration when it still has work (switch-free), otherwise the
  /// deepest queue, ties broken by configuration name — all
  /// deterministic regardless of submission interleaving.
  std::string pick(const std::string& resident) const {
    if (depth(resident) > 0) return resident;
    std::string best;
    std::size_t best_depth = 0;
    for (const auto& [config, q] : queues_) {
      if (q.size() > best_depth) {
        best = config;
        best_depth = q.size();
      }
    }
    return best;
  }

 private:
  std::map<std::string, std::deque<JobId>> queues_;
};

}  // namespace atlantis::serve
