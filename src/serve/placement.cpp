#include "serve/placement.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atlantis::serve {

std::uint64_t placement_hash(const std::string& key) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  // Raw FNV-1a has weak avalanche on short keys: "cfg0".."cfg9" differ
  // only in the low bytes, so their hashes share the top bits and land
  // on the same ring arc — collapsing the ring to one effective shard.
  // A murmur3-style finalizer spreads every input bit across the word.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kConsistentHash: return "consistent_hash";
    case PlacementPolicy::kRandom: return "random";
  }
  return "consistent_hash";
}

HashRing::HashRing(int replicas) : replicas_(replicas) {
  ATLANTIS_CHECK(replicas >= 1, "a ring node needs at least one replica");
}

void HashRing::add_node(int shard, const std::string& name) {
  ring_.reserve(ring_.size() + static_cast<std::size_t>(replicas_));
  for (int r = 0; r < replicas_; ++r) {
    ring_.push_back({placement_hash(name + "#" + std::to_string(r)), shard});
  }
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::remove_node(int shard) {
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard](const VNode& v) {
                               return v.shard == shard;
                             }),
              ring_.end());
}

int HashRing::node_count() const {
  std::vector<int> shards;
  for (const VNode& v : ring_) shards.push_back(v.shard);
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return static_cast<int>(shards.size());
}

int HashRing::lookup(const std::string& key) const {
  ATLANTIS_CHECK(!ring_.empty(), "lookup on an empty placement ring");
  const std::uint64_t h = placement_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const VNode& v, std::uint64_t hash) { return v.hash < hash; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->shard;
}

std::vector<int> HashRing::successors(const std::string& key, int n) const {
  ATLANTIS_CHECK(!ring_.empty(), "successors on an empty placement ring");
  const std::uint64_t h = placement_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const VNode& v, std::uint64_t hash) { return v.hash < hash; });
  std::vector<int> out;
  for (std::size_t walked = 0; walked < ring_.size() &&
                               static_cast<int>(out.size()) < n;
       ++walked, ++it) {
    if (it == ring_.end()) it = ring_.begin();  // wrap
    if (std::find(out.begin(), out.end(), it->shard) == out.end()) {
      out.push_back(it->shard);
    }
  }
  return out;
}

}  // namespace atlantis::serve
