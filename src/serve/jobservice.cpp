#include "serve/jobservice.hpp"

#include <algorithm>
#include <deque>

#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/worker_pool.hpp"

namespace atlantis::serve {

JobService::JobService(core::AtlantisSystem& system, ServeOptions options)
    : system_(system), options_(std::move(options)) {
  ATLANTIS_CHECK(system_.acb_count() > 0,
                 "a JobService needs at least one computing board");
  boards_.reserve(static_cast<std::size_t>(system_.acb_count()));
  for (int i = 0; i < system_.acb_count(); ++i) {
    BoardState state;
    state.index = i;
    state.dead = !system_.acb(i).alive();
    state.driver = std::make_unique<core::AtlantisDriver>(system_, i);
    // The switcher wraps the board's host-PCI FPGA and stays UNBOUND:
    // reconfigurations are posted through the driver's cursor
    // (try_switch_task), so each board has exactly one notion of "now".
    state.switcher =
        std::make_unique<core::TaskSwitcher>(system_.acb(i).fpga(0));
    state.switcher->enable_cache(options_.cache_capacity,
                                 options_.cache_hit_fraction);
    state.switcher->set_differential(options_.differential_reconfig);
    boards_.push_back(std::move(state));
  }
}

void JobService::register_config(const hw::Bitstream& bs) {
  configs_[bs.name] = bs;
  for (BoardState& board : boards_) board.switcher->add_task(bs);
}

util::Result<JobId> JobService::submit(JobSpec spec) {
  ATLANTIS_CHECK(configs_.count(spec.config) != 0,
                 "configuration '" + spec.config +
                     "' was never registered with the service");
  ATLANTIS_CHECK(static_cast<bool>(spec.work),
                 "a job needs a work functor");
  std::uint64_t& pending = pending_by_tenant_[spec.tenant];
  if (pending >= options_.max_queued_per_tenant) {
    return util::Result<JobId>::failure(
        util::ErrorCode::kOverloaded,
        "tenant '" + spec.tenant + "' already holds " +
            std::to_string(pending) + " queued jobs");
  }
  const JobId id = static_cast<JobId>(records_.size());
  JobRecord rec;
  rec.id = id;
  rec.tenant = spec.tenant;
  rec.kind = spec.kind;
  rec.config = spec.config;
  rec.arrival = spec.arrival;
  records_.push_back(std::move(rec));
  queues_.push_back(spec.config, id);
  specs_.push_back(std::move(spec));
  ++pending;
  return id;
}

const core::TaskSwitcher& JobService::switcher(int board_index) const {
  return *boards_.at(static_cast<std::size_t>(board_index)).switcher;
}

sim::TrackId JobService::tenant_track(const std::string& tenant) {
  const auto it = tenant_tracks_.find(tenant);
  if (it != tenant_tracks_.end()) return it->second;
  const sim::TrackId track =
      system_.timeline().add_track("tenant/" + tenant);
  tenant_tracks_.emplace(tenant, track);
  return track;
}

JobService::BoardState* JobService::pick_board() {
  BoardState* best = nullptr;
  for (BoardState& board : boards_) {
    if (board.dead) continue;
    if (!system_.acb(board.index).alive()) {  // killed from outside
      board.dead = true;
      board.switcher->invalidate_cache();
      continue;
    }
    if (best == nullptr || board.driver->now() < best->driver->now()) {
      best = &board;  // ties keep the lowest index (iteration order)
    }
  }
  return best;
}

const ServiceReport& JobService::run(util::WorkerPool* pool) {
  util::WorkerPool& workers =
      pool != nullptr ? *pool : util::WorkerPool::shared();
  report_ = ServiceReport{};
  run_ids_.clear();

  // Delta baselines, so repeated run() calls report only their own work.
  struct Baseline {
    std::uint64_t switches, hits, misses, evictions, insertions;
    std::uint64_t partials, regions;
    util::Picoseconds switch_time, partial_time;
  };
  std::vector<Baseline> base;
  base.reserve(boards_.size());
  for (const BoardState& b : boards_) {
    base.push_back({b.switcher->switch_count(), b.switcher->cache_hits(),
                    b.switcher->cache_misses(),
                    b.switcher->cache_stats().evictions,
                    b.switcher->cache_stats().insertions,
                    b.switcher->partial_switches(),
                    b.switcher->regions_loaded(),
                    b.switcher->total_switch_time(),
                    b.switcher->partial_switch_time()});
  }

  while (!queues_.empty()) {
    BoardState* board = pick_board();
    if (board == nullptr) {
      fail_remaining(util::ErrorCode::kBoardDead);
      break;
    }
    core::AcbBoard& acb = system_.acb(board->index);

    const std::string config =
        options_.fifo_order ? queues_.pick_fifo()
        : options_.diff_order
            ? queues_.pick_closest([&](const std::string& c) {
                return board->switcher->estimate_switch_cost(c);
              })
            : queues_.pick(board->switcher->current());
    std::deque<JobId> batch;
    while (static_cast<int>(batch.size()) < options_.max_batch &&
           queues_.depth(config) > 0) {
      batch.push_back(queues_.pop_front(config));
    }

    // One drop-out opportunity per dispatch, drawn on the scheduling
    // thread BEFORE any state changes, so the draw order — and the
    // schedule — is pool-size invariant.
    if (acb.draw_dropout()) {
      board->dead = true;
      board->switcher->invalidate_cache();
      report_.dead_boards.push_back(board->index);
      queues_.push_front(config, batch);
      continue;
    }

    // Make the configuration resident (full load, partial reconfig, or a
    // cache-hit activation). A switch that cannot complete within the
    // retry policy means the board lost its configuration path: drain it.
    const util::Result<util::Picoseconds> sw =
        board->driver->try_switch_task(*board->switcher, config);
    if (!sw.ok()) {
      board->dead = true;
      board->switcher->invalidate_cache();
      report_.dead_boards.push_back(board->index);
      queues_.push_front(config, batch);
      continue;
    }

    serve_batch(*board, config, batch, workers);
    ++report_.batches;
  }

  // Cache / reconfiguration accounting (deltas over this run).
  for (std::size_t i = 0; i < boards_.size(); ++i) {
    const core::TaskSwitcher& sw = *boards_[i].switcher;
    const std::uint64_t switches = sw.switch_count() - base[i].switches;
    const std::uint64_t hits = sw.cache_hits() - base[i].hits;
    const std::uint64_t partials = sw.partial_switches() - base[i].partials;
    report_.task_switches += switches;
    report_.cache_hits += hits;
    report_.cache_misses += sw.cache_misses() - base[i].misses;
    report_.cache_evictions += sw.cache_stats().evictions - base[i].evictions;
    // A cache miss is either a differential region load or a full
    // bitstream load; with no region signatures partials is always 0 and
    // this reduces to the old switches - hits.
    report_.partial_reconfigs += partials;
    report_.regions_loaded += sw.regions_loaded() - base[i].regions;
    report_.full_reconfigs += switches - hits - partials;
    report_.reconfig_time += sw.total_switch_time() - base[i].switch_time;
    report_.partial_reconfig_time +=
        sw.partial_switch_time() - base[i].partial_time;
  }
  const std::uint64_t lookups = report_.cache_hits + report_.cache_misses;
  report_.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(report_.cache_hits) /
                         static_cast<double>(lookups);

  finalize_report();
  return report_;
}

void JobService::serve_batch(BoardState& board, const std::string& config,
                             const std::deque<JobId>& batch,
                             util::WorkerPool& pool) {
  // Functional evaluation: pure job functors, results addressed by
  // index. This is the ONLY thing the pool size touches.
  std::vector<JobOutcome> outcomes(batch.size());
  pool.parallel_for(static_cast<int>(batch.size()), [&](int i) {
    outcomes[static_cast<std::size_t>(i)] =
        specs_[batch[static_cast<std::size_t>(i)]].work();
  });

  core::AtlantisDriver& drv = *board.driver;
  sim::Timeline& timeline = drv.timeline();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const JobId id = batch[i];
    JobRecord& rec = records_[id];
    const JobOutcome& out = outcomes[i];
    rec.board = board.index;
    rec.start = drv.now();
    rec.queue_wait = std::max<util::Picoseconds>(0, rec.start - rec.arrival);
    // The wait lands on the tenant's own track, so per-tenant latency is
    // readable straight off the timeline (track_stats).
    timeline.post(tenant_track(rec.tenant), sim::TxnKind::kQueueWait,
                  std::string(job_kind_name(rec.kind)) + " wait [" + config +
                      "]",
                  sim::ResourceId{}, rec.arrival, rec.queue_wait);

    const std::string label =
        std::string(job_kind_name(rec.kind)) + " " + rec.tenant + "#" +
        std::to_string(id);
    bool io_ok = true;
    if (out.dma_in_bytes > 0 && options_.overlap_io) {
      // Input streams in while the board computes; join at the max.
      drv.dma_write_async(out.dma_in_bytes);
      if (out.compute_time > 0) drv.advance(out.compute_time, label.c_str());
      drv.wait();
    } else {
      if (out.dma_in_bytes > 0) {
        const util::Result<hw::DmaTransfer> w =
            drv.try_dma_write(out.dma_in_bytes);
        if (!w.ok()) {
          rec.error = w.error();
          io_ok = false;
        }
      }
      if (io_ok && out.compute_time > 0) {
        drv.advance(out.compute_time, label.c_str());
      }
    }
    if (io_ok && out.dma_out_bytes > 0) {
      const util::Result<hw::DmaTransfer> r =
          drv.try_dma_read(out.dma_out_bytes);
      if (!r.ok()) {
        rec.error = r.error();
        io_ok = false;
      }
    }
    rec.finish = drv.now();
    rec.outcome = out;
    if (io_ok) {
      ++report_.served;
    } else {
      ++report_.failed;
    }
    --pending_by_tenant_[rec.tenant];
    run_ids_.push_back(id);
  }
}

void JobService::fail_remaining(util::ErrorCode code) {
  while (!queues_.empty()) {
    const std::string config = queues_.pick("");
    const JobId id = queues_.pop_front(config);
    JobRecord& rec = records_[id];
    rec.error = code;
    rec.outcome.ok = false;
    rec.outcome.detail = "no alive board to serve the job";
    ++report_.failed;
    --pending_by_tenant_[rec.tenant];
    run_ids_.push_back(id);
  }
}

void JobService::finalize_report() {
  // Per-tenant quality, from this run's records only.
  std::map<std::string, std::vector<double>> waits;
  std::map<std::string, std::vector<double>> services;
  std::map<std::string, std::uint64_t> failures;
  for (const JobId id : run_ids_) {
    const JobRecord& rec = records_[id];
    if (rec.error != util::ErrorCode::kOk || !rec.outcome.ok) {
      ++failures[rec.tenant];
      if (rec.board < 0) continue;  // never dispatched: no timing sample
    }
    waits[rec.tenant].push_back(static_cast<double>(rec.queue_wait));
    services[rec.tenant].push_back(
        static_cast<double>(rec.finish - rec.start));
    report_.makespan = std::max(report_.makespan, rec.finish);
  }
  for (const auto& [tenant, w] : waits) {
    TenantStats t;
    t.tenant = tenant;
    t.jobs = w.size();
    t.failed = failures.count(tenant) ? failures[tenant] : 0;
    t.p50_wait = static_cast<util::Picoseconds>(util::percentile(w, 0.50));
    t.p99_wait = static_cast<util::Picoseconds>(util::percentile(w, 0.99));
    t.max_wait = static_cast<util::Picoseconds>(
        *std::max_element(w.begin(), w.end()));
    const std::vector<double>& s = services.at(tenant);
    double sum = 0.0;
    for (const double v : s) sum += v;
    t.mean_service = static_cast<util::Picoseconds>(
        sum / static_cast<double>(s.size()));
    report_.tenants.push_back(std::move(t));
  }
  // Tenants that only ever failed undispatched still deserve a row.
  for (const auto& [tenant, failed] : failures) {
    if (waits.count(tenant)) continue;
    TenantStats t;
    t.tenant = tenant;
    t.failed = failed;
    report_.tenants.push_back(std::move(t));
  }
  std::sort(report_.tenants.begin(), report_.tenants.end(),
            [](const TenantStats& a, const TenantStats& b) {
              return a.tenant < b.tenant;
            });
  if (report_.makespan > 0) {
    report_.jobs_per_second = static_cast<double>(report_.served) /
                              (static_cast<double>(report_.makespan) / 1e12);
  }
}

}  // namespace atlantis::serve
