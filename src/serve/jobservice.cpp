#include "serve/jobservice.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/worker_pool.hpp"

namespace atlantis::serve {

JobService::JobService(core::AtlantisSystem& system, ServeOptions options)
    : system_(system), options_(std::move(options)) {
  ATLANTIS_CHECK(system_.acb_count() > 0,
                 "a JobService needs at least one computing board");
  boards_.reserve(static_cast<std::size_t>(system_.acb_count()));
  for (int i = 0; i < system_.acb_count(); ++i) {
    BoardState state;
    state.index = i;
    state.dead = !system_.acb(i).alive();
    state.driver = std::make_unique<core::AtlantisDriver>(system_, i);
    // The switcher wraps the board's host-PCI FPGA and stays UNBOUND:
    // reconfigurations are posted through the driver's cursor
    // (try_switch_task), so each board has exactly one notion of "now".
    state.switcher =
        std::make_unique<core::TaskSwitcher>(system_.acb(i).fpga(0));
    state.switcher->enable_cache(options_.cache_capacity,
                                 options_.cache_hit_fraction);
    state.switcher->set_differential(options_.differential_reconfig);
    boards_.push_back(std::move(state));
  }
}

void JobService::register_config(const hw::Bitstream& bs) {
  configs_[bs.name] = bs;
  for (BoardState& board : boards_) board.switcher->add_task(bs);
}

util::Result<JobId> JobService::submit(JobSpec spec) {
  if (configs_.count(spec.config) == 0) {
    return util::Result<JobId>::failure(
        util::ErrorCode::kAdmissionReject,
        "configuration '" + spec.config +
            "' was never registered with the service");
  }
  ATLANTIS_CHECK(static_cast<bool>(spec.work),
                 "a job needs a work functor");
  std::uint64_t& pending = pending_by_tenant_[spec.tenant];
  if (pending >= options_.max_queued_per_tenant) {
    return util::Result<JobId>::failure(
        util::ErrorCode::kOverloaded,
        "tenant '" + spec.tenant + "' already holds " +
            std::to_string(pending) + " queued jobs");
  }
  const JobId id = static_cast<JobId>(records_.size());
  JobRecord rec;
  rec.id = id;
  rec.tenant = spec.tenant;
  rec.kind = spec.kind;
  rec.config = spec.config;
  rec.arrival = spec.arrival;
  rec.deadline = spec.deadline;
  records_.push_back(std::move(rec));
  queues_.push_back(spec.config, id);
  specs_.push_back(std::move(spec));
  ++pending;
  return id;
}

const core::TaskSwitcher& JobService::switcher(int board_index) const {
  return *boards_.at(static_cast<std::size_t>(board_index)).switcher;
}

const core::AtlantisDriver& JobService::driver(int board_index) const {
  return *boards_.at(static_cast<std::size_t>(board_index)).driver;
}

bool JobService::board_dead(int board_index) const {
  return boards_.at(static_cast<std::size_t>(board_index)).dead;
}

bool JobService::board_quarantined(int board_index) const {
  return boards_.at(static_cast<std::size_t>(board_index)).quarantined;
}

void JobService::set_board_enabled(int board_index, bool enabled) {
  BoardState& board = boards_.at(static_cast<std::size_t>(board_index));
  if (!enabled && board.active) {
    // Detach the mid-compute job with its progress intact (the same
    // in-crate migration a preemption performs): another board resumes
    // it from its remaining compute.
    const JobId id = *board.active;
    board.active.reset();
    queues_.push_front(records_[id].config, {id});
  }
  board.quarantined = !enabled;
}

void JobService::revive_board(int board_index) {
  BoardState& board = boards_.at(static_cast<std::size_t>(board_index));
  ATLANTIS_CHECK(system_.acb(board.index).alive(),
                 "revive_board needs the underlying board alive again");
  if (!board.dead) return;
  board.dead = false;
  board.switcher->invalidate_cache();
}

bool JobService::scrub_board(int board_index) {
  BoardState& board = boards_.at(static_cast<std::size_t>(board_index));
  return board.switcher->scrub();
}

std::vector<JobId> JobService::pending_ids() const {
  std::vector<JobId> ids;
  for (const auto& [config, id] : queues_.all()) ids.push_back(id);
  return ids;
}

util::Result<JobId> JobService::retry_job(JobId id) {
  if (id >= records_.size()) {
    return util::Result<JobId>::failure(
        util::ErrorCode::kJobNotPending,
        "unknown job id " + std::to_string(id));
  }
  JobRecord& rec = records_[id];
  if (rec.migrated || checkpointed_out_.count(id) != 0 ||
      rec.error == util::ErrorCode::kOk) {
    return util::Result<JobId>::failure(
        util::ErrorCode::kJobNotPending,
        "job " + std::to_string(id) + " is not a resolved failure");
  }
  // Back to pending: the spec (and its pure functor) is still held, so a
  // fresh dispatch re-evaluates and re-pays the full job.
  rec.error = util::ErrorCode::kOk;
  rec.outcome = JobOutcome{};
  rec.board = -1;
  rec.start = 0;
  rec.finish = 0;
  rec.queue_wait = 0;
  queues_.push_back(rec.config, id);
  ++pending_by_tenant_[rec.tenant];
  return id;
}

bool JobService::has_active_jobs() const {
  for (const BoardState& b : boards_) {
    if (b.active) return true;
  }
  return false;
}

bool JobService::any_quarantined_alive() const {
  for (const BoardState& b : boards_) {
    if (!b.dead && b.quarantined && system_.acb(b.index).alive()) return true;
  }
  return false;
}

sim::TrackId JobService::tenant_track(const std::string& tenant) {
  const auto it = tenant_tracks_.find(tenant);
  if (it != tenant_tracks_.end()) return it->second;
  const sim::TrackId track =
      system_.timeline().add_track("tenant/" + tenant);
  tenant_tracks_.emplace(tenant, track);
  return track;
}

JobService::BoardState* JobService::pick_board() {
  BoardState* best = nullptr;
  for (BoardState& board : boards_) {
    if (board.dead || board.quarantined) continue;
    if (!system_.acb(board.index).alive()) {  // killed from outside
      board.dead = true;
      board.switcher->invalidate_cache();
      continue;
    }
    if (best == nullptr || board.driver->now() < best->driver->now()) {
      best = &board;  // ties keep the lowest index (iteration order)
    }
  }
  return best;
}

const ServiceReport& JobService::run(const RunOptions& options) {
  util::WorkerPool& workers =
      options.pool != nullptr ? *options.pool : util::WorkerPool::shared();
  report_ = ServiceReport{};
  run_ids_.clear();

  // Delta baselines, so repeated run() calls report only their own work.
  struct Baseline {
    std::uint64_t switches, hits, misses, evictions, insertions;
    std::uint64_t partials, regions;
    util::Picoseconds switch_time, partial_time;
  };
  std::vector<Baseline> base;
  base.reserve(boards_.size());
  for (const BoardState& b : boards_) {
    base.push_back({b.switcher->switch_count(), b.switcher->cache_hits(),
                    b.switcher->cache_misses(),
                    b.switcher->cache_stats().evictions,
                    b.switcher->cache_stats().insertions,
                    b.switcher->partial_switches(),
                    b.switcher->regions_loaded(),
                    b.switcher->total_switch_time(),
                    b.switcher->partial_switch_time()});
  }

  if (options_.policy == Policy::kBatched) {
    run_batched(workers, options);
  } else {
    run_preemptive(options);
  }

  // Cache / reconfiguration accounting (deltas over this run).
  for (std::size_t i = 0; i < boards_.size(); ++i) {
    const core::TaskSwitcher& sw = *boards_[i].switcher;
    const std::uint64_t switches = sw.switch_count() - base[i].switches;
    const std::uint64_t hits = sw.cache_hits() - base[i].hits;
    const std::uint64_t partials = sw.partial_switches() - base[i].partials;
    report_.task_switches += switches;
    report_.cache_hits += hits;
    report_.cache_misses += sw.cache_misses() - base[i].misses;
    report_.cache_evictions += sw.cache_stats().evictions - base[i].evictions;
    // A cache miss is either a differential region load or a full
    // bitstream load; with no region signatures partials is always 0 and
    // this reduces to the old switches - hits.
    report_.partial_reconfigs += partials;
    report_.regions_loaded += sw.regions_loaded() - base[i].regions;
    report_.full_reconfigs += switches - hits - partials;
    report_.reconfig_time += sw.total_switch_time() - base[i].switch_time;
    report_.partial_reconfig_time +=
        sw.partial_switch_time() - base[i].partial_time;
  }
  const std::uint64_t lookups = report_.cache_hits + report_.cache_misses;
  report_.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(report_.cache_hits) /
                         static_cast<double>(lookups);

  finalize_report();
  return report_;
}

void JobService::reset(core::ResetScope scope) {
  // Forward the scope to every board driver (the fault rewind inside is
  // crate-wide but idempotent, so repeating it per board is harmless).
  for (BoardState& b : boards_) b.driver->reset(scope);
  if (scope == core::ResetScope::kStats || scope == core::ResetScope::kAll) {
    report_ = ServiceReport{};
    run_ids_.clear();
  }
}

void JobService::run_batched(util::WorkerPool& pool,
                             const RunOptions& options) {
  std::size_t dispatches = 0;
  while (!queues_.empty()) {
    if (paused(options, dispatches++)) return;  // bounded run: paused
    BoardState* board = pick_board();
    if (board == nullptr) {
      // All schedulable boards are merely quarantined: leave the work
      // queued for the supervisor (re-admission or spare drain) rather
      // than declaring the crate dead.
      if (any_quarantined_alive()) return;
      fail_remaining(util::ErrorCode::kBoardDead);
      break;
    }
    core::AcbBoard& acb = system_.acb(board->index);

    const std::string config =
        options_.fifo_order ? queues_.pick_fifo()
        : options_.diff_order
            ? queues_.pick_closest([&](const std::string& c) {
                return board->switcher->estimate_switch_cost(c);
              })
            : queues_.pick(board->switcher->current());
    std::deque<JobId> batch;
    while (static_cast<int>(batch.size()) < options_.max_batch &&
           queues_.depth(config) > 0) {
      batch.push_back(queues_.pop_front(config));
    }

    // One drop-out opportunity per dispatch, drawn on the scheduling
    // thread BEFORE any state changes, so the draw order — and the
    // schedule — is pool-size invariant.
    if (acb.draw_dropout()) {
      queues_.push_front(config, batch);
      lose_board(*board);
      continue;
    }

    // Make the configuration resident (full load, partial reconfig, or a
    // cache-hit activation). A switch that cannot complete within the
    // retry policy means the board lost its configuration path: drain it.
    const util::Result<util::Picoseconds> sw =
        board->driver->try_switch_task(*board->switcher, config);
    if (!sw.ok()) {
      queues_.push_front(config, batch);
      lose_board(*board);
      continue;
    }

    serve_batch(*board, config, batch, pool);
    ++report_.batches;
  }
}

void JobService::run_preemptive(const RunOptions& options) {
  std::size_t dispatches = 0;
  const auto any_active = [&] {
    for (const BoardState& b : boards_) {
      if (!b.dead && b.active) return true;
    }
    return false;
  };
  while (!queues_.empty() || any_active()) {
    if (paused(options, dispatches++)) return;  // bounded run: paused

    // Advance the alive board with the smallest cursor that has either a
    // job mid-compute or, when idle, work to pick up. Deterministic:
    // cursor ties keep the lowest board index.
    BoardState* board = nullptr;
    for (BoardState& b : boards_) {
      if (b.dead) continue;
      if (!system_.acb(b.index).alive()) {  // killed from outside
        lose_board(b);
        continue;
      }
      if (b.quarantined) continue;
      if (!b.active && queues_.empty()) continue;
      if (board == nullptr || b.driver->now() < board->driver->now()) {
        board = &b;
      }
    }
    if (board == nullptr) {
      if (any_active()) continue;  // boards were lost in the scan above
      if (any_quarantined_alive()) return;  // supervisor owns the next step
      fail_remaining(util::ErrorCode::kBoardDead);
      break;
    }

    if (!board->active) {
      const std::optional<JobId> next = edf_pick();
      if (!next) continue;  // raced with a lost board; re-scan
      // One drop-out opportunity per fresh dispatch, mirroring the
      // batched policy's draw point.
      if (system_.acb(board->index).draw_dropout()) {
        queues_.push_front(records_[*next].config, {*next});
        lose_board(*board);
        continue;
      }
      if (!start_run(*board, *next)) continue;
      if (!board->active) continue;  // job resolved at dispatch (I/O fail)
    }

    JobProgress& prog = progress_.at(*board->active);
    const util::Picoseconds quantum =
        options_.preempt_slice > 0 ? options_.preempt_slice : prog.remaining;
    const util::Picoseconds slice = std::min(prog.remaining, quantum);
    if (slice > 0) {
      const JobRecord& rec = records_[*board->active];
      const std::string label =
          std::string(job_kind_name(rec.kind)) + " " + rec.tenant + "#" +
          std::to_string(rec.id) + (prog.preemptions > 0 ? " (resumed)" : "");
      board->driver->advance(slice, label.c_str());
      prog.remaining -= slice;
    }
    if (prog.remaining <= 0) {
      finish_run(*board);
      continue;
    }
    // Preemption check after each slice: a strictly earlier waiting
    // deadline evicts the active job (no deadline = never urgent enough
    // to preempt, always preemptible).
    const std::optional<util::Picoseconds> waiting =
        earliest_waiting_deadline();
    const JobRecord& active_rec = records_[*board->active];
    const util::Picoseconds active_deadline =
        active_rec.deadline > 0 ? active_rec.deadline
                                : std::numeric_limits<util::Picoseconds>::max();
    if (waiting && *waiting < active_deadline) preempt(*board);
  }
}

std::optional<JobId> JobService::edf_pick() {
  std::optional<JobId> best;
  std::string best_config;
  util::Picoseconds best_deadline = 0;
  for (const auto& [config, id] : queues_.all()) {
    const util::Picoseconds d =
        records_[id].deadline > 0
            ? records_[id].deadline
            : std::numeric_limits<util::Picoseconds>::max();
    if (!best || d < best_deadline || (d == best_deadline && id < *best)) {
      best = id;
      best_config = config;
      best_deadline = d;
    }
  }
  if (best) queues_.erase(best_config, *best);
  return best;
}

std::optional<util::Picoseconds> JobService::earliest_waiting_deadline()
    const {
  std::optional<util::Picoseconds> best;
  for (const auto& [config, id] : queues_.all()) {
    const util::Picoseconds d =
        records_[id].deadline > 0
            ? records_[id].deadline
            : std::numeric_limits<util::Picoseconds>::max();
    if (!best || d < *best) best = d;
  }
  return best;
}

void JobService::ensure_progress(JobId id) {
  JobProgress& prog = progress_[id];
  if (prog.outcome_ready) return;
  // The pure functor is evaluated once, inline on the scheduling thread:
  // from here on the job is fully described by data, which is what makes
  // checkpoints portable without the functor.
  prog.outcome = specs_[id].work();
  prog.outcome_ready = true;
  prog.remaining = prog.outcome.compute_time;
}

bool JobService::start_run(BoardState& board, JobId id) {
  JobRecord& rec = records_[id];
  const util::Result<util::Picoseconds> sw =
      board.driver->try_switch_task(*board.switcher, rec.config);
  if (!sw.ok()) {
    queues_.push_front(rec.config, {id});
    lose_board(board);
    return false;
  }
  ensure_progress(id);
  JobProgress& prog = progress_.at(id);
  core::AtlantisDriver& drv = *board.driver;
  if (rec.board < 0) {
    // First dispatch: the queue wait ends now and lands on the tenant's
    // track, exactly like the batched policy.
    rec.start = drv.now();
    rec.queue_wait = std::max<util::Picoseconds>(0, rec.start - rec.arrival);
    drv.timeline().post(tenant_track(rec.tenant), sim::TxnKind::kQueueWait,
                        std::string(job_kind_name(rec.kind)) + " wait [" +
                            rec.config + "]",
                        sim::ResourceId{}, rec.arrival, rec.queue_wait);
  }
  rec.board = board.index;
  if (!prog.input_done && prog.outcome.dma_in_bytes > 0) {
    const util::Result<hw::DmaTransfer> w =
        drv.try_dma_write(prog.outcome.dma_in_bytes);
    if (!w.ok()) {
      fail_job(id, w.error(), "input DMA failed");
      return true;  // board stays alive and idle
    }
  }
  prog.input_done = true;
  board.active = id;
  return true;
}

void JobService::finish_run(BoardState& board) {
  const JobId id = *board.active;
  board.active.reset();
  JobRecord& rec = records_[id];
  JobProgress& prog = progress_.at(id);
  core::AtlantisDriver& drv = *board.driver;
  bool io_ok = true;
  if (prog.outcome.dma_out_bytes > 0) {
    const util::Result<hw::DmaTransfer> r =
        drv.try_dma_read(prog.outcome.dma_out_bytes);
    if (!r.ok()) {
      rec.error = r.error();
      io_ok = false;
    }
  }
  rec.finish = drv.now();
  rec.outcome = prog.outcome;
  rec.preemptions = prog.preemptions;
  if (io_ok) {
    ++report_.served;
  } else {
    ++report_.failed;
  }
  if (rec.deadline > 0 && rec.finish > rec.deadline) {
    ++report_.deadline_misses;
  }
  --pending_by_tenant_[rec.tenant];
  run_ids_.push_back(id);
  progress_.erase(id);
}

void JobService::preempt(BoardState& board) {
  const JobId id = *board.active;
  board.active.reset();
  JobProgress& prog = progress_.at(id);
  ++prog.preemptions;
  ++report_.preemptions;
  if (options_.policy == Policy::kAbortRerun) {
    // The baseline without checkpointing: all progress is lost, the
    // input payload must be streamed again.
    prog.remaining = prog.outcome.compute_time;
    prog.input_done = false;
  }
  queues_.push_front(records_[id].config, {id});
}

void JobService::fail_job(JobId id, util::ErrorCode code,
                          const std::string& detail) {
  JobRecord& rec = records_[id];
  rec.error = code;
  rec.outcome.ok = false;
  rec.outcome.detail = detail;
  ++report_.failed;
  --pending_by_tenant_[rec.tenant];
  run_ids_.push_back(id);
  progress_.erase(id);
}

void JobService::lose_board(BoardState& board) {
  board.dead = true;
  board.switcher->invalidate_cache();
  report_.dead_boards.push_back(board.index);
  if (board.active) {
    const JobId id = *board.active;
    board.active.reset();
    if (migration_target_ != nullptr) {
      migrate_out(id);
    } else {
      // The job's progress lives in progress_, so any surviving board
      // resumes it from its remaining compute — an in-crate migration.
      queues_.push_front(records_[id].config, {id});
    }
  }
}

void JobService::serve_batch(BoardState& board, const std::string& config,
                             const std::deque<JobId>& batch,
                             util::WorkerPool& pool) {
  // Functional evaluation: pure job functors, results addressed by
  // index. This is the ONLY thing the pool size touches.
  std::vector<JobOutcome> outcomes(batch.size());
  pool.parallel_for(static_cast<int>(batch.size()), [&](int i) {
    outcomes[static_cast<std::size_t>(i)] =
        specs_[batch[static_cast<std::size_t>(i)]].work();
  });

  core::AtlantisDriver& drv = *board.driver;
  sim::Timeline& timeline = drv.timeline();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const JobId id = batch[i];
    JobRecord& rec = records_[id];
    const JobOutcome& out = outcomes[i];
    rec.board = board.index;
    rec.start = drv.now();
    rec.queue_wait = std::max<util::Picoseconds>(0, rec.start - rec.arrival);
    // The wait lands on the tenant's own track, so per-tenant latency is
    // readable straight off the timeline (track_stats).
    timeline.post(tenant_track(rec.tenant), sim::TxnKind::kQueueWait,
                  std::string(job_kind_name(rec.kind)) + " wait [" + config +
                      "]",
                  sim::ResourceId{}, rec.arrival, rec.queue_wait);

    const std::string label =
        std::string(job_kind_name(rec.kind)) + " " + rec.tenant + "#" +
        std::to_string(id);
    bool io_ok = true;
    if (out.dma_in_bytes > 0 && options_.overlap_io) {
      // Input streams in while the board computes; join at the max.
      drv.dma_write_async(out.dma_in_bytes);
      if (out.compute_time > 0) drv.advance(out.compute_time, label.c_str());
      drv.wait();
    } else {
      if (out.dma_in_bytes > 0) {
        const util::Result<hw::DmaTransfer> w =
            drv.try_dma_write(out.dma_in_bytes);
        if (!w.ok()) {
          rec.error = w.error();
          io_ok = false;
        }
      }
      if (io_ok && out.compute_time > 0) {
        drv.advance(out.compute_time, label.c_str());
      }
    }
    if (io_ok && out.dma_out_bytes > 0) {
      const util::Result<hw::DmaTransfer> r =
          drv.try_dma_read(out.dma_out_bytes);
      if (!r.ok()) {
        rec.error = r.error();
        io_ok = false;
      }
    }
    rec.finish = drv.now();
    rec.outcome = out;
    if (io_ok) {
      ++report_.served;
    } else {
      ++report_.failed;
    }
    if (rec.deadline > 0 && rec.finish > rec.deadline) {
      ++report_.deadline_misses;
    }
    --pending_by_tenant_[rec.tenant];
    run_ids_.push_back(id);
    progress_.erase(id);  // restored jobs may carry one
  }
}

void JobService::fail_remaining(util::ErrorCode code) {
  while (!queues_.empty()) {
    const std::string config = queues_.pick("");
    const JobId id = queues_.pop_front(config);
    if (migration_target_ != nullptr) {
      // The drain path of a dying crate: pending jobs move to the spare
      // service instead of completing with kBoardDead.
      migrate_out(id);
      continue;
    }
    JobRecord& rec = records_[id];
    rec.error = code;
    rec.outcome.ok = false;
    rec.outcome.detail = "no alive board to serve the job";
    ++report_.failed;
    --pending_by_tenant_[rec.tenant];
    run_ids_.push_back(id);
    progress_.erase(id);
  }
}

JobCheckpoint JobService::make_checkpoint(JobId id) {
  ensure_progress(id);
  const JobRecord& rec = records_[id];
  const JobProgress& prog = progress_.at(id);
  sim::SnapshotWriter w;
  w.begin_section("serve/job");
  w.put_u64(rec.id);
  w.put_string(rec.tenant);
  w.put_u8(static_cast<std::uint8_t>(rec.kind));
  w.put_string(rec.config);
  w.put_i64(rec.arrival);
  w.put_i64(rec.deadline);
  w.put_i64(prog.remaining);
  w.put_bool(prog.input_done);
  w.put_u32(prog.preemptions);
  w.put_bool(prog.outcome.ok);
  w.put_string(prog.outcome.detail);
  w.put_u64(prog.outcome.checksum);
  w.put_f64(prog.outcome.value);
  w.put_i64(prog.outcome.compute_time);
  w.put_u64(prog.outcome.dma_in_bytes);
  w.put_u64(prog.outcome.dma_out_bytes);
  w.end_section();
  JobCheckpoint ckpt;
  ckpt.id = rec.id;
  ckpt.tenant = rec.tenant;
  ckpt.config = rec.config;
  ckpt.bytes = w.bytes();
  return ckpt;
}

util::Result<JobCheckpoint> JobService::checkpoint_job(JobId id) {
  if (id >= records_.size()) {
    return util::Result<JobCheckpoint>::failure(util::ErrorCode::kJobNotPending,
                                                "unknown job id " +
                                                    std::to_string(id));
  }
  JobRecord& rec = records_[id];
  if (checkpointed_out_.count(id) != 0) {
    return util::Result<JobCheckpoint>::failure(
        util::ErrorCode::kJobNotPending,
        "job " + std::to_string(id) + " is already checkpointed out");
  }
  bool detached = queues_.erase(rec.config, id);
  if (!detached) {
    for (BoardState& b : boards_) {
      if (b.active && *b.active == id) {
        b.active.reset();
        detached = true;
        break;
      }
    }
  }
  if (!detached) {
    return util::Result<JobCheckpoint>::failure(
        util::ErrorCode::kJobNotPending,
        "job " + std::to_string(id) + " is not pending (already resolved?)");
  }
  JobCheckpoint ckpt = make_checkpoint(id);
  checkpointed_out_.insert(id);
  --pending_by_tenant_[rec.tenant];
  return ckpt;
}

util::Result<JobId> JobService::restore_job(const JobCheckpoint& ckpt) {
  util::Result<sim::SnapshotReader> opened =
      sim::SnapshotReader::open(ckpt.bytes);
  if (!opened.ok()) {
    return util::Result<JobId>::failure(opened.error(), opened.message());
  }
  sim::SnapshotReader r = std::move(opened.value());
  if (!r.has_section("serve/job")) {
    // A truncation that ends exactly on a frame boundary parses as a
    // valid (shorter) stream; missing the job section is still a
    // corrupt checkpoint, not a caller error.
    return util::Result<JobId>::failure(util::ErrorCode::kSnapshotCorrupt,
                                        "checkpoint has no job section");
  }
  r.select("serve/job");
  const JobId saved_id = r.get_u64();
  std::string tenant = r.get_string();
  const JobKind kind = static_cast<JobKind>(r.get_u8());
  std::string config = r.get_string();
  const util::Picoseconds arrival = r.get_i64();
  const util::Picoseconds deadline = r.get_i64();
  JobProgress prog;
  prog.outcome_ready = true;  // a checkpoint always carries the outcome
  prog.remaining = r.get_i64();
  prog.input_done = r.get_bool();
  prog.preemptions = r.get_u32();
  prog.outcome.ok = r.get_bool();
  prog.outcome.detail = r.get_string();
  prog.outcome.checksum = r.get_u64();
  prog.outcome.value = r.get_f64();
  prog.outcome.compute_time = r.get_i64();
  prog.outcome.dma_in_bytes = r.get_u64();
  prog.outcome.dma_out_bytes = r.get_u64();
  if (configs_.count(config) == 0) {
    return util::Result<JobId>::failure(
        util::ErrorCode::kAdmissionReject,
        "checkpointed job needs configuration '" + config +
            "', which was never registered with this service");
  }

  // Back home: the service that produced the checkpoint revives the
  // original id (ledger continuity for preempt-and-resume).
  if (saved_id < records_.size() && checkpointed_out_.count(saved_id) != 0 &&
      records_[saved_id].tenant == tenant &&
      records_[saved_id].config == config) {
    checkpointed_out_.erase(saved_id);
    records_[saved_id].migrated = false;
    progress_[saved_id] = std::move(prog);
    queues_.push_back(config, saved_id);
    ++pending_by_tenant_[tenant];
    return saved_id;
  }

  std::uint64_t& pending = pending_by_tenant_[tenant];
  if (pending >= options_.max_queued_per_tenant) {
    return util::Result<JobId>::failure(
        util::ErrorCode::kOverloaded,
        "tenant '" + tenant + "' already holds " + std::to_string(pending) +
            " queued jobs");
  }
  const JobId id = static_cast<JobId>(records_.size());
  JobRecord rec;
  rec.id = id;
  rec.tenant = tenant;
  rec.kind = kind;
  rec.config = config;
  rec.arrival = arrival;
  rec.deadline = deadline;
  rec.preemptions = prog.preemptions;
  records_.push_back(std::move(rec));
  JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = kind;
  spec.config = config;
  spec.arrival = arrival;
  spec.deadline = deadline;
  const JobOutcome outcome = prog.outcome;
  spec.work = [outcome] { return outcome; };  // the data replaces the functor
  specs_.push_back(std::move(spec));
  progress_[id] = std::move(prog);
  queues_.push_back(config, id);
  ++pending;
  return id;
}

util::Result<JobId> JobService::migrate_job(JobId id, JobService& target) {
  const util::Result<JobCheckpoint> ckpt = checkpoint_job(id);
  if (!ckpt.ok()) {
    return util::Result<JobId>::failure(ckpt.error(), ckpt.message());
  }
  const util::Result<JobId> restored = target.restore_job(ckpt.value());
  if (!restored.ok()) return restored;
  records_[id].migrated = true;
  ++report_.migrated;
  progress_.erase(id);
  return restored;
}

void JobService::migrate_out(JobId id) {
  JobRecord& rec = records_[id];
  const JobCheckpoint ckpt = make_checkpoint(id);
  const util::Result<JobId> restored = migration_target_->restore_job(ckpt);
  --pending_by_tenant_[rec.tenant];
  progress_.erase(id);
  if (!restored.ok()) {
    rec.error = restored.error();
    rec.outcome.ok = false;
    rec.outcome.detail = "migration failed: " + restored.message();
    ++report_.failed;
    run_ids_.push_back(id);
    return;
  }
  rec.migrated = true;
  ++report_.migrated;
}

void JobService::save_state(sim::SnapshotWriter& w) const {
  system_.save_state(w);
  w.begin_section("serve/service");
  w.put_u32(static_cast<std::uint32_t>(boards_.size()));
  for (const BoardState& b : boards_) {
    w.put_bool(b.dead);
    w.put_bool(b.active.has_value());
    w.put_u64(b.active.value_or(0));
    b.driver->save_state(w);
    b.switcher->save_state(w);
  }
  w.put_u64(records_.size());
  for (const JobRecord& rec : records_) {
    w.put_u64(rec.id);
    w.put_string(rec.tenant);
    w.put_u8(static_cast<std::uint8_t>(rec.kind));
    w.put_string(rec.config);
    w.put_i64(rec.board);
    w.put_i64(rec.arrival);
    w.put_i64(rec.start);
    w.put_i64(rec.finish);
    w.put_i64(rec.queue_wait);
    w.put_i64(rec.deadline);
    w.put_u32(rec.preemptions);
    w.put_bool(rec.migrated);
    w.put_u32(static_cast<std::uint32_t>(rec.error));
    w.put_bool(rec.outcome.ok);
    w.put_string(rec.outcome.detail);
    w.put_u64(rec.outcome.checksum);
    w.put_f64(rec.outcome.value);
    w.put_i64(rec.outcome.compute_time);
    w.put_u64(rec.outcome.dma_in_bytes);
    w.put_u64(rec.outcome.dma_out_bytes);
  }
  const auto queued = queues_.all();
  w.put_u64(queued.size());
  for (const auto& [config, id] : queued) {
    w.put_string(config);
    w.put_u64(id);
  }
  w.put_u32(static_cast<std::uint32_t>(pending_by_tenant_.size()));
  for (const auto& [tenant, n] : pending_by_tenant_) {
    w.put_string(tenant);
    w.put_u64(n);
  }
  // Tenant tracks are created lazily on the shared timeline; the mapping
  // must survive so a restored twin keeps posting on the same tracks.
  w.put_u32(static_cast<std::uint32_t>(tenant_tracks_.size()));
  for (const auto& [tenant, track] : tenant_tracks_) {
    w.put_string(tenant);
    w.put_u32(static_cast<std::uint32_t>(track.value));
  }
  w.put_u32(static_cast<std::uint32_t>(progress_.size()));
  for (const auto& [id, prog] : progress_) {
    w.put_u64(id);
    w.put_bool(prog.outcome_ready);
    w.put_i64(prog.remaining);
    w.put_bool(prog.input_done);
    w.put_u32(prog.preemptions);
    w.put_bool(prog.outcome.ok);
    w.put_string(prog.outcome.detail);
    w.put_u64(prog.outcome.checksum);
    w.put_f64(prog.outcome.value);
    w.put_i64(prog.outcome.compute_time);
    w.put_u64(prog.outcome.dma_in_bytes);
    w.put_u64(prog.outcome.dma_out_bytes);
  }
  w.put_u32(static_cast<std::uint32_t>(checkpointed_out_.size()));
  for (const JobId id : checkpointed_out_) w.put_u64(id);
  // Appended in minor 1: the quarantine bitmask. Kept at the section
  // tail so minor-0 readers simply never reach it and minor-0 streams
  // load with no board quarantined (remaining() == 0 below).
  ATLANTIS_CHECK(boards_.size() <= 64,
                 "quarantine mask carries at most 64 boards");
  std::uint64_t quarantine_mask = 0;
  for (std::size_t i = 0; i < boards_.size(); ++i) {
    if (boards_[i].quarantined) quarantine_mask |= 1ull << i;
  }
  w.put_u64(quarantine_mask);
  w.end_section();
}

void JobService::load_state(sim::SnapshotReader& r) {
  system_.load_state(r);
  r.select("serve/service");
  const std::uint32_t n_boards = r.get_u32();
  if (n_boards != boards_.size()) {
    throw util::StateError("service snapshot board count mismatch");
  }
  for (BoardState& b : boards_) {
    b.dead = r.get_bool();
    const bool has_active = r.get_bool();
    const JobId active = r.get_u64();
    b.active = has_active ? std::optional<JobId>(active) : std::nullopt;
    b.driver->load_state(r);
    b.switcher->load_state(r);
  }
  const std::uint64_t n_records = r.get_u64();
  if (n_records != records_.size()) {
    throw util::StateError(
        "service snapshot has " + std::to_string(n_records) +
        " jobs; this service has " + std::to_string(records_.size()) +
        " — a twin must replay the same submissions before load_state");
  }
  for (JobRecord& rec : records_) {
    const JobId id = r.get_u64();
    std::string tenant = r.get_string();
    const JobKind kind = static_cast<JobKind>(r.get_u8());
    std::string config = r.get_string();
    if (rec.id != id || rec.tenant != tenant || rec.config != config) {
      throw util::StateError(
          "service snapshot ledger entry " + std::to_string(id) +
          " does not match this service's submission order");
    }
    rec.kind = kind;
    rec.board = static_cast<int>(r.get_i64());
    rec.arrival = r.get_i64();
    rec.start = r.get_i64();
    rec.finish = r.get_i64();
    rec.queue_wait = r.get_i64();
    rec.deadline = r.get_i64();
    rec.preemptions = r.get_u32();
    rec.migrated = r.get_bool();
    rec.error = static_cast<util::ErrorCode>(r.get_u32());
    rec.outcome.ok = r.get_bool();
    rec.outcome.detail = r.get_string();
    rec.outcome.checksum = r.get_u64();
    rec.outcome.value = r.get_f64();
    rec.outcome.compute_time = r.get_i64();
    rec.outcome.dma_in_bytes = r.get_u64();
    rec.outcome.dma_out_bytes = r.get_u64();
  }
  queues_ = ConfigQueues{};
  const std::uint64_t n_queued = r.get_u64();
  for (std::uint64_t i = 0; i < n_queued; ++i) {
    std::string config = r.get_string();
    const JobId id = r.get_u64();
    queues_.push_back(config, id);
  }
  pending_by_tenant_.clear();
  const std::uint32_t n_tenants = r.get_u32();
  for (std::uint32_t i = 0; i < n_tenants; ++i) {
    std::string tenant = r.get_string();
    pending_by_tenant_[std::move(tenant)] = r.get_u64();
  }
  tenant_tracks_.clear();
  const std::uint32_t n_tracks = r.get_u32();
  for (std::uint32_t i = 0; i < n_tracks; ++i) {
    std::string tenant = r.get_string();
    tenant_tracks_[std::move(tenant)] =
        sim::TrackId{static_cast<int>(r.get_u32())};
  }
  progress_.clear();
  const std::uint32_t n_progress = r.get_u32();
  for (std::uint32_t i = 0; i < n_progress; ++i) {
    const JobId id = r.get_u64();
    JobProgress prog;
    prog.outcome_ready = r.get_bool();
    prog.remaining = r.get_i64();
    prog.input_done = r.get_bool();
    prog.preemptions = r.get_u32();
    prog.outcome.ok = r.get_bool();
    prog.outcome.detail = r.get_string();
    prog.outcome.checksum = r.get_u64();
    prog.outcome.value = r.get_f64();
    prog.outcome.compute_time = r.get_i64();
    prog.outcome.dma_in_bytes = r.get_u64();
    prog.outcome.dma_out_bytes = r.get_u64();
    progress_[id] = std::move(prog);
  }
  checkpointed_out_.clear();
  const std::uint32_t n_out = r.get_u32();
  for (std::uint32_t i = 0; i < n_out; ++i) {
    checkpointed_out_.insert(r.get_u64());
  }
  const std::uint64_t quarantine_mask =
      r.remaining() >= sizeof(std::uint64_t) ? r.get_u64() : 0;
  for (std::size_t i = 0; i < boards_.size(); ++i) {
    boards_[i].quarantined = (quarantine_mask & (1ull << i)) != 0;
  }
}

void JobService::finalize_report() {
  // Per-tenant quality, from this run's records only.
  std::map<std::string, std::vector<double>> waits;
  std::map<std::string, std::vector<double>> services;
  std::map<std::string, std::uint64_t> failures;
  for (const JobId id : run_ids_) {
    const JobRecord& rec = records_[id];
    if (rec.error != util::ErrorCode::kOk || !rec.outcome.ok) {
      ++failures[rec.tenant];
      if (rec.board < 0) continue;  // never dispatched: no timing sample
    }
    waits[rec.tenant].push_back(static_cast<double>(rec.queue_wait));
    services[rec.tenant].push_back(
        static_cast<double>(rec.finish - rec.start));
    report_.makespan = std::max(report_.makespan, rec.finish);
  }
  for (const auto& [tenant, w] : waits) {
    TenantStats t;
    t.tenant = tenant;
    t.jobs = w.size();
    t.failed = failures.count(tenant) ? failures[tenant] : 0;
    t.p50_wait = static_cast<util::Picoseconds>(util::percentile(w, 0.50));
    t.p99_wait = static_cast<util::Picoseconds>(util::percentile(w, 0.99));
    t.max_wait = static_cast<util::Picoseconds>(
        *std::max_element(w.begin(), w.end()));
    const std::vector<double>& s = services.at(tenant);
    double sum = 0.0;
    for (const double v : s) sum += v;
    t.mean_service = static_cast<util::Picoseconds>(
        sum / static_cast<double>(s.size()));
    report_.tenants.push_back(std::move(t));
  }
  // Tenants that only ever failed undispatched still deserve a row.
  for (const auto& [tenant, failed] : failures) {
    if (waits.count(tenant)) continue;
    TenantStats t;
    t.tenant = tenant;
    t.failed = failed;
    report_.tenants.push_back(std::move(t));
  }
  std::sort(report_.tenants.begin(), report_.tenants.end(),
            [](const TenantStats& a, const TenantStats& b) {
              return a.tenant < b.tenant;
            });
  if (report_.makespan > 0) {
    report_.jobs_per_second = static_cast<double>(report_.served) /
                              (static_cast<double>(report_.makespan) / 1e12);
  }
}

}  // namespace atlantis::serve
